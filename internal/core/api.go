// Package core implements the memory-reclamation schemes evaluated in
// "Interval-Based Memory Reclamation" (Wen et al., PPoPP 2018): the paper's
// three IBR algorithms (POIBR, TagIBR with its FAA/WCAS/TPA variants, and
// 2GEIBR) plus the comparison schemes (NoMM, EBR, hazard pointers, hazard
// eras), and two post-paper engines: Hyaline's per-batch reference counting
// (hyaline.go) and a DEBRA+-style neutralization EBR (debra.go). All schemes
// implement the shared API of Fig. 1 of the paper.
//
// A scheme mediates every access to shared pointers (Ptr cells) of a data
// structure whose nodes live in a mem.Pool. Threads are identified by small
// integer ids; a given tid must be used by one goroutine at a time.
//
// # Deviation from the paper's Figs. 5 and 6
//
// The figures publish the upper reservation endpoint *after* loading the
// pointer and then return immediately. Between the load and the publish, a
// concurrent reclaimer can scan the thread's stale (small) interval, miss
// the conflict, and free the block just loaded — the same window hazard
// pointers close by re-reading the pointer after the fence. We therefore
// implement the read protocol the way the authors' artifact does: publish
// the candidate endpoint first, then re-read the pointer, returning only a
// value that was (re)loaded while the covering reservation was already
// visible. The loop is still lock free: it retries only when another thread
// raised born_before / the global epoch, i.e. when some thread made
// progress (Theorem 3's argument is unchanged).
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ibr/internal/epoch"
	"ibr/internal/mem"
	"ibr/internal/obs"
)

// Ptr is a shared mutable pointer cell ("block**" in Fig. 1). Data
// structures embed Ptr for every mutable link (list next, tree children,
// the root) and access it only through a Scheme.
//
// bits holds the mem.Handle (with the application's mark bits, and — under
// TagIBR-WCAS — the packed birth epoch). born is the monotonically
// increasing born_before tag of Fig. 5, used only by the portable and FAA
// TagIBR variants; it is the "doubles the size of pointers" cost the WCAS
// and TPA variants remove.
type Ptr struct {
	born atomic.Uint64
	bits atomic.Uint64
}

// Raw returns the current handle without any protection. It is safe only
// when the caller knows no reclamation can interfere (single-threaded
// setup, tests, NoMM) — exactly like dereferencing without a hazard in C.
func (p *Ptr) Raw() mem.Handle { return mem.Handle(p.bits.Load()) }

// setRaw stores without instrumentation; used by schemes and for
// single-threaded initialization via Scheme implementations.
func (p *Ptr) setRaw(h mem.Handle) { p.bits.Store(uint64(h)) }

// FetchOrMarks atomically ORs mark bits (mem.Mark0Bit/Mark1Bit) into the
// stored word and returns the previous value. Because the target address is
// unchanged, no scheme needs write-side instrumentation for it: TagIBR's
// born_before already covers the target, and WCAS's packed epoch rides
// along untouched. The Natarajan–Mittal tree uses it to flag and tag edges,
// mirroring the bitwise-OR instruction of that paper.
func (p *Ptr) FetchOrMarks(m uint64) mem.Handle {
	return mem.Handle(p.bits.Or(m & (mem.Mark0Bit | mem.Mark1Bit)))
}

// Memory is the allocator surface a Scheme needs: allocation, reclamation,
// and the birth/retire epoch fields of the block header. *mem.Pool[T]
// satisfies it for every T.
type Memory interface {
	Alloc(tid int) (mem.Handle, bool)
	Free(tid int, h mem.Handle)
	FreeBatch(tid int, hs []mem.Handle)
	FreeBatches(tid int, batches ...[]mem.Handle)
	Birth(h mem.Handle) uint64
	SetBirth(h mem.Handle, e uint64)
	RetireEpoch(h mem.Handle) uint64
	SetRetireEpoch(h mem.Handle, e uint64)
	MarkRetired(h mem.Handle)
}

// Scheme is the memory-management API of Fig. 1, extended with the thread
// id and protection-slot plumbing that the paper leaves implicit.
type Scheme interface {
	// Name returns the scheme's registry name, e.g. "tagibr-wcas".
	Name() string

	// StartOp marks the start of a data-structure operation (Fig. 1
	// start_op): the thread publishes its reservation.
	StartOp(tid int)

	// EndOp marks the end of the operation: the reservation is withdrawn
	// and, for pointer-based schemes, all protection slots are cleared.
	EndOp(tid int)

	// RestartOp renews the reservation mid-operation. Data structures call
	// it when they restart from the root after repeated CAS failures; per
	// §4.3.1 this bounds the memory a starving (but not stalled) thread can
	// reserve. The caller must hold no node references across the call.
	RestartOp(tid int)

	// Alloc allocates a block and stamps its birth epoch, advancing the
	// global epoch every EpochFreq allocations (Figs. 4/5 alloc). It
	// returns Nil only if the pool is exhausted even after a forced scan.
	Alloc(tid int) mem.Handle

	// Retire hands a detached block to the reclamation system (Fig. 1
	// retire). The block must already be unreachable from the structure's
	// shared pointers. Every EmptyFreq retirements the thread scans its
	// retire list and frees every block no longer protected.
	Retire(tid int, h mem.Handle)

	// Read performs a protected pointer load (Fig. 1 read). idx names the
	// per-thread protection slot for HP/HE (0 <= idx < Options.Slots);
	// epoch- and interval-based schemes ignore it. The returned handle
	// carries the application mark bits of the stored value.
	Read(tid, idx int, p *Ptr) mem.Handle

	// ReadRoot is Read for a data structure's root pointer. POIBR overrides
	// it with the snapshot read of Fig. 4 (its only protected read); every
	// other scheme treats it as Read.
	ReadRoot(tid, idx int, p *Ptr) mem.Handle

	// Write performs a shared pointer store (Fig. 1 write). TagIBR
	// variants first raise the pointer's born_before tag.
	Write(tid int, p *Ptr, h mem.Handle)

	// CompareAndSwap conditionally updates a shared pointer (Fig. 1 CAS).
	CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool

	// Unreserve releases protection slot idx (Fig. 1 unreserve). Only
	// HP and HE need it; it is a no-op elsewhere — the headline usability
	// win of interval-based reclamation.
	Unreserve(tid, idx int)

	// TransferSlot copies the protection in slot from to slot to (both
	// owned by tid). HP/HE use it when a traversal's node roles shift
	// (e.g. the Natarajan–Mittal seek promoting leaf to parent): the node
	// stays continuously protected, so no re-validation is needed. A no-op
	// for every other scheme — more per-read bookkeeping that IBR avoids.
	TransferSlot(tid, from, to int)

	// Drain forces a scan of tid's retire list regardless of EmptyFreq.
	Drain(tid int)

	// Unreclaimed returns the number of blocks tid has retired but not yet
	// reclaimed — the space metric of Fig. 9.
	Unreclaimed(tid int) int

	// Robust reports whether a stalled thread can block only a bounded
	// number of reclamations under this scheme (Fig. 7 summary).
	Robust() bool
}

// Options tunes a scheme; zero values select the paper's settings.
type Options struct {
	// Threads is the number of thread ids. Required.
	Threads int
	// EpochFreq: advance the global epoch every EpochFreq allocations by a
	// thread (paper §5 uses n×k total with k=150, i.e. each thread
	// advances every 150 of its own allocations). Default 150.
	EpochFreq int
	// EmptyFreq: the base scan cadence (paper §5: k=30). Default 30. The
	// scanning schemes drain adaptively: a thread scans when its unreclaimed
	// count reaches a watermark that starts EmptyFreq above the last scan's
	// residue and backs off (doubling, capped at 32×EmptyFreq) while scans
	// are futile — so a backlog pinned by a stalled reservation is not
	// rescanned every EmptyFreq retirements. Hyaline seals batches on the
	// fixed EmptyFreq cadence (its handoff has no yield signal to adapt to).
	EmptyFreq int
	// BucketShift sets the birth-epoch width of a retire-list bucket to
	// 2^BucketShift epochs. 0 selects the default (5, i.e. 32 epochs);
	// negative values select one epoch per bucket (tests).
	BucketShift int
	// Slots is the number of protection slots per thread for HP/HE.
	// Default 8 (enough for every structure here except the Bonsai tree,
	// which pointer-based schemes cannot run; see §5 of the paper).
	Slots int
	// Obs, when non-nil, receives SMR lifecycle hooks (alloc, retire,
	// scan, free ages, epoch advances) for the flight recorder and the
	// reclamation histograms. Nil disables observability: every hook site
	// degrades to one nil check. The observer must be sized for Threads.
	Obs *obs.SchemeObs
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		panic("core: Options.Threads must be positive")
	}
	if o.EpochFreq <= 0 {
		o.EpochFreq = 150
	}
	if o.EmptyFreq <= 0 {
		o.EmptyFreq = 30
	}
	if o.Slots <= 0 {
		o.Slots = 8
	}
	return o
}

// retiredBlock caches the lifetime interval so scans do not touch block
// headers (which may be on remote cache lines).
type retiredBlock struct {
	h             mem.Handle
	birth, retire uint64
}

// RetireSource labels who initiated a retirement. The serving layer tags
// each worker's current source so the scheme can account for garbage by
// cause: ordinary structure operations (user deletes and update-displaced
// nodes) versus TTL expirations, which the engine's expiry wheel drives
// through this same retire path. The split is what lets operators see that
// an unreclaimed backlog is, say, expiry-driven churn rather than a delete
// storm — both compete for the identical scan capacity.
type RetireSource uint8

const (
	// SourceUser: retirement caused by a client-visible structure operation.
	SourceUser RetireSource = iota
	// SourceExpiry: retirement caused by a TTL expiration.
	SourceExpiry
	// NumRetireSources sizes per-source counter arrays.
	NumRetireSources
)

// threadState is per-thread bookkeeping, cache-line padded.
type threadState struct {
	_            [64]byte
	allocCount   uint64
	retireCount  uint64
	sinceAdvance uint64 // retirements since the last epoch advance seen by this tid
	allocFailed  bool   // last Alloc returned Nil for pool exhaustion
	retireSrc    RetireSource // current retirement cause (owned by tid's goroutine)
	store        retireStore
	drainAt      int // adaptive watermark: scan when store.count reaches it
	drainStep    int // current watermark step (EmptyFreq, doubling when futile)
	unreclaimed  atomic.Int64 // store.count, readable by samplers
	scratch      []uint64      // scan scratch (HP address / HE era snapshot)
	sum          resSummary    // scan scratch (reservation summary)
	freeScratch  []mem.Handle  // scan scratch (blocks to free in one batch)
	blame        []uint64      // scan scratch (kept blocks per witness tid, obs only)
	scans        atomic.Uint64 // retire-list scans executed
	scanned      atomic.Uint64 // conflict tests run across all scans
	freed        atomic.Uint64 // blocks reclaimed by scans
	bucketSkips  atomic.Uint64 // whole buckets kept by one corner test
	bucketFrees  atomic.Uint64 // whole buckets freed by one corner test
	retiredBy    [NumRetireSources]atomic.Uint64 // retirements by cause
	_            [64]byte
}

// base carries the machinery shared by every scheme: the global clock, the
// reservation table, per-thread retire lists, and the alloc/retire cadence
// of Figs. 2, 4 and 5.
type base struct {
	name        string
	mem         Memory
	clock       *epoch.Clock
	res         *epoch.Table
	opts        Options
	obs         *obs.SchemeObs // nil when observability is off (hooks nil-check)
	bucketShift uint           // log2 epochs per retire bucket
	adaptive    bool           // watermark-driven drains (off: fixed EmptyFreq cadence)
	pressure    *atomic.Bool   // serving layer's soft-watermark drain-pressure flag
	ts          []threadState
}

func newBase(name string, m Memory, o Options) base {
	o = o.withDefaults()
	shift := uint(defaultBucketShift)
	if o.BucketShift > 0 {
		shift = uint(o.BucketShift)
	} else if o.BucketShift < 0 {
		shift = 0
	}
	b := base{
		name:        name,
		mem:         m,
		clock:       epoch.NewClock(),
		res:         epoch.NewTable(o.Threads),
		opts:        o,
		obs:         o.Obs,
		bucketShift: shift,
		adaptive:    true,
		pressure:    new(atomic.Bool),
		ts:          make([]threadState, o.Threads),
	}
	for i := range b.ts {
		b.ts[i].drainAt = o.EmptyFreq
		b.ts[i].drainStep = o.EmptyFreq
	}
	return b
}

func (b *base) Name() string            { return b.name }
func (b *base) Unreclaimed(tid int) int { return int(b.ts[tid].unreclaimed.Load()) }

// TakeAllocFailed reports whether tid's most recent Scheme.Alloc returned
// Nil because the pool was exhausted, clearing the flag. It distinguishes
// "the structure op failed because the key was there" from "the op failed
// because no node could be allocated" — ds operations collapse both into a
// false return, and the serving layer must answer BUSY (overload) for the
// latter, never EXISTS. Like Alloc itself, it may only be called by the
// goroutine owning tid.
func (b *base) TakeAllocFailed(tid int) bool {
	ts := &b.ts[tid]
	f := ts.allocFailed
	ts.allocFailed = false
	return f
}

// AllocFailed invokes TakeAllocFailed on schemes that track exhaustion
// (every registered scheme does, via base).
func AllocFailed(s Scheme, tid int) bool {
	if a, ok := s.(interface{ TakeAllocFailed(int) bool }); ok {
		return a.TakeAllocFailed(tid)
	}
	return false
}
func (b *base) Unreserve(tid, idx int)  {}
func (b *base) checkTid(tid int)        { _ = &b.ts[tid] }

// Clock exposes the scheme's epoch clock (tests and diagnostics).
func (b *base) Clock() *epoch.Clock { return b.clock }

// ScanStats aggregates reclamation-scan work across threads. Scanned/Scans
// is the mean number of blocks *examined* per scan: the per-retirement
// overhead that lands on the critical path when no spare cores absorb it
// (see EXPERIMENTS.md on the single-CPU throughput inversion). With the
// summarized scans this can be far below the retire-list length — runs of
// still-protected blocks are skipped wholesale and EBR's scan stops at the
// first unreclaimable block — which is exactly the improvement the counters
// exist to surface. Callers should read it at quiescence.
type ScanStats struct {
	Scans   uint64 // empty() executions
	Scanned uint64 // retired blocks examined (conflict tests actually run)
	Freed   uint64 // blocks reclaimed
	// BucketSkips/BucketFrees count whole-bucket decisions: buckets kept or
	// freed by a single corner test against the reservation summary instead
	// of per-block tests. They measure how much of the backlog the bucketed
	// layout lets a scan not walk. A store-level decision (one test settling
	// every bucket at once) counts each live bucket it covered.
	BucketSkips uint64
	BucketFrees uint64
}

// MeanListLen returns the average number of blocks examined per scan.
// (The name predates the summarized scans, under which examined ≤ list
// length; it is kept for CSV/JSON column stability.)
func (s ScanStats) MeanListLen() float64 {
	if s.Scans == 0 {
		return 0
	}
	return float64(s.Scanned) / float64(s.Scans)
}

// ExaminedPerFreed returns the mean number of blocks examined per block
// reclaimed — the scan efficiency metric of BENCH_scan.json.
func (s ScanStats) ExaminedPerFreed() float64 {
	if s.Freed == 0 {
		return 0
	}
	return float64(s.Scanned) / float64(s.Freed)
}

// ScanStats sums the per-thread scan counters.
func (b *base) ScanStats() ScanStats {
	var out ScanStats
	for i := range b.ts {
		out.Scans += b.ts[i].scans.Load()
		out.Scanned += b.ts[i].scanned.Load()
		out.Freed += b.ts[i].freed.Load()
		out.BucketSkips += b.ts[i].bucketSkips.Load()
		out.BucketFrees += b.ts[i].bucketFrees.Load()
	}
	return out
}

// SetDrainPressure sets or clears the serving layer's drain-pressure flag:
// while set, the adaptive drain ignores its futile-scan backoff and scans
// whenever the unreclaimed count is at least EmptyFreq above the last scan's
// residue. The admission-control remediator raises it when a shard's total
// unreclaimed crosses the soft watermark — global evidence that space, not
// scan cost, is the binding constraint — and clears it below.
func (b *base) SetDrainPressure(on bool) { b.pressure.Store(on) }

// SetDrainPressure invokes the scheme's drain-pressure flag if it has one
// (every registered scheme does, via base).
func SetDrainPressure(s Scheme, on bool) {
	if p, ok := s.(interface{ SetDrainPressure(bool) }); ok {
		p.SetDrainPressure(on)
	}
}

// SetRetireSource tags tid's subsequent retirements with src until changed.
// Like every per-tid mutator it may only be called by the goroutine owning
// tid; the serving worker brackets expiry batches with it.
func (b *base) SetRetireSource(tid int, src RetireSource) {
	if src >= NumRetireSources {
		panic("core: unknown retire source")
	}
	b.ts[tid].retireSrc = src
}

// RetireSources sums the per-thread retirement counters by cause. Safe to
// call concurrently with serving (the counters are atomics).
func (b *base) RetireSources() [NumRetireSources]uint64 {
	var out [NumRetireSources]uint64
	for i := range b.ts {
		for s := range out {
			out[s] += b.ts[i].retiredBy[s].Load()
		}
	}
	return out
}

// SetRetireSource tags tid's subsequent retirements on schemes that account
// by cause (every registered scheme does, via base).
func SetRetireSource(s Scheme, tid int, src RetireSource) {
	if r, ok := s.(interface{ SetRetireSource(int, RetireSource) }); ok {
		r.SetRetireSource(tid, src)
	}
}

// RetireSources returns the scheme's retirement counts by cause (zeros when
// the scheme does not account).
func RetireSources(s Scheme) [NumRetireSources]uint64 {
	if r, ok := s.(interface{ RetireSources() [NumRetireSources]uint64 }); ok {
		return r.RetireSources()
	}
	return [NumRetireSources]uint64{}
}

// Reservations exposes the reservation table (tests and diagnostics).
func (b *base) Reservations() *epoch.Table { return b.res }

// threadStore exposes tid's retire store (tests and diagnostics; callers
// must hold the same single-goroutine ownership of tid as the scan paths).
func (b *base) threadStore(tid int) *retireStore { return &b.ts[tid].store }

// allocEpochs implements the alloc cadence of Figs. 4/5: bump the counter,
// advance the epoch every EpochFreq allocations, allocate, stamp the birth
// epoch. Used by every scheme that tags births (all but EBR, HP, NoMM).
func (b *base) allocEpochs(tid int, drain func(int)) mem.Handle {
	ts := &b.ts[tid]
	ts.allocFailed = false
	ts.allocCount++
	// An allocation proves the thread's op loop is allocating, so the alloc
	// cadence is the one epoch source; reset retire's liveness fallback (see
	// base.retire) so a mixed alloc+retire workload advances the epoch once
	// per EpochFreq ops, not twice — the paper's Fig. 5 cadence.
	ts.sinceAdvance = 0
	if ts.allocCount%uint64(b.opts.EpochFreq) == 0 {
		e := b.clock.Advance()
		b.obs.EpochAdvance(tid, e)
	}
	h, ok := b.mem.Alloc(tid)
	if !ok {
		// Last resort: reclaim our own garbage, then retry once.
		drain(tid)
		if h, ok = b.mem.Alloc(tid); !ok {
			ts.allocFailed = true
			return mem.Nil
		}
	}
	birth := b.clock.Now()
	b.mem.SetBirth(h, birth)
	b.obs.Alloc(tid, birth)
	if b.obs.Enabled() {
		if si, ok := h.Slot(); ok {
			b.obs.BlockAlloc(tid, si, birth)
		}
	}
	return h
}

// allocPlain allocates without epoch stamping (EBR, DEBRA, Hyaline, HP,
// NoMM).
//
//ibrlint:ignore non-interval schemes: EBR, DEBRA, Hyaline, HP and NoMM never read birth epochs, so stamping is dead work (DEBRA and Hyaline stamp only retire epochs, in retire)
func (b *base) allocPlain(tid int, drain func(int)) mem.Handle {
	ts := &b.ts[tid]
	ts.allocFailed = false
	h, ok := b.mem.Alloc(tid)
	if !ok {
		if drain != nil {
			drain(tid)
		}
		if h, ok = b.mem.Alloc(tid); !ok {
			ts.allocFailed = true
			return mem.Nil
		}
	}
	b.obs.Alloc(tid, 0)
	if b.obs.Enabled() {
		if si, ok := h.Slot(); ok {
			b.obs.BlockAlloc(tid, si, 0)
		}
	}
	return h
}

// retire implements the retire cadence shared by Figs. 2/4/5: stamp the
// retire epoch, bucket the block into the thread-local store, and scan when
// the drain policy says to (see shouldDrain).
//
// Epoch cadence: the clock has ONE advance source per op. For the
// epoch-tagging schemes that source is alloc (allocEpochs, the paper's §3
// cadence); retire advances only as a liveness fallback, after EpochFreq
// consecutive allocation-free retirements (a pure retire phase — e.g.
// draining a structure — performs no allocations, so without the fallback
// the epoch would freeze and every retired interval would touch the current
// epoch forever). Any allocation resets the fallback counter, so a mixed
// alloc+retire workload no longer advances twice per EpochFreq ops — the
// double-rate bug vs the paper's Fig. 5 cadence. For EBR-style schemes
// (allocPlain never touches the counter) the fallback fires every EpochFreq
// retirements, which IS the paper's Fig. 2 lines 15–17. Advancing on
// retirement cannot weaken Theorem 2's robustness bound — it only reduces
// the number of births per epoch.
func (b *base) retire(tid int, h mem.Handle, drain func(int)) {
	if h.IsNil() {
		panic("core: retire of nil handle")
	}
	h = h.Addr()
	ts := &b.ts[tid]
	e := b.clock.Now()
	b.mem.SetRetireEpoch(h, e)
	b.mem.MarkRetired(h)
	ts.store.add(h, b.mem.Birth(h), e, b.bucketShift)
	ts.unreclaimed.Store(int64(ts.store.count))
	b.obs.Retire(tid, e, ts.store.count)
	if b.obs.Enabled() {
		if si, ok := h.Slot(); ok {
			b.obs.BlockRetire(tid, si, e)
		}
	}
	ts.retireCount++
	ts.retiredBy[ts.retireSrc].Add(1)
	ts.sinceAdvance++
	if ts.sinceAdvance >= uint64(b.opts.EpochFreq) {
		ts.sinceAdvance = 0
		ne := b.clock.Advance()
		b.obs.EpochAdvance(tid, ne)
	}
	if b.shouldDrain(ts) {
		drain(tid)
	}
}

// shouldDrain is the drain policy. Adaptive (the scanning schemes): scan
// when the unreclaimed count reaches the watermark set after the last scan
// (its residue + drainStep, where drainStep is EmptyFreq after a productive
// scan and doubles up to 32×EmptyFreq while scans are futile), or — under
// the serving layer's drain-pressure flag — whenever the count is at least
// EmptyFreq over the residue, which collapses the backoff to the base
// cadence when space is the binding constraint. Fixed (Hyaline): every
// EmptyFreq retirements, the paper cadence; its seal-and-hand has no
// freed/examined yield for the watermark to learn from, and backing off
// would just grow the sealed batches.
func (b *base) shouldDrain(ts *threadState) bool {
	if !b.adaptive {
		return ts.retireCount%uint64(b.opts.EmptyFreq) == 0
	}
	if ts.store.count >= ts.drainAt {
		return true
	}
	return b.pressure.Load() && ts.store.count >= ts.drainAt-ts.drainStep+b.opts.EmptyFreq
}

// scan walks tid's retire store, freeing every block for which canFree
// returns true; it is the skeleton of the pointer-based empty() (HP, whose
// hazard test is per-address and gains nothing from epoch corners). The
// epoch and interval schemes use the cheaper scanRetiredBefore /
// scanSummarized below. Freed blocks are returned to the allocator in one
// batch at the end of the walk.
func (b *base) scan(tid int, canFree func(retiredBlock) bool) {
	ts := &b.ts[tid]
	t0 := b.obs.ScanStart(tid, b.clock.Now())
	ts.scans.Add(1)
	st := &ts.store
	examined := uint64(st.count)
	free := ts.freeScratch[:0]
	out := st.buckets[:0]
	for bi := range st.buckets {
		bk := &st.buckets[bi]
		w := bk.start
		for k := bk.start; k < len(bk.retires); k++ {
			rb := retiredBlock{h: bk.handles[k], birth: bk.births[k], retire: bk.retires[k]}
			if canFree(rb) {
				free = append(free, rb.h)
				st.count--
			} else {
				if w != k {
					bk.handles[w], bk.births[w], bk.retires[w] = bk.handles[k], bk.births[k], bk.retires[k]
				}
				w++
			}
		}
		bk.truncate(w)
		if bk.live() == 0 {
			st.recycle(bk)
			continue
		}
		bk.maybeCompact()
		out = append(out, *bk)
	}
	st.buckets = out
	st.hint = 0
	ts.scanned.Add(examined)
	ts.freeScratch = free
	b.finishScan(tid, free, nil, examined, t0)
}

// finishScan frees the collected batches — the residual per-block batch
// plus any whole buckets' handle arrays, under one free-list lock — and
// settles the counters and the adaptive-drain watermark. examined and t0
// feed the scan-end observability hook (t0 from the matching ScanStart;
// both are dead values when b.obs is nil).
func (b *base) finishScan(tid int, free []mem.Handle, whole [][]mem.Handle, examined uint64, t0 uint64) {
	ts := &b.ts[tid]
	freed := len(free)
	for _, hs := range whole {
		freed += len(hs)
	}
	ts.freed.Add(uint64(freed))
	ts.unreclaimed.Store(int64(ts.store.count))
	if b.adaptive {
		// Feed the watermark from this scan's yield. A scan that misses the
		// 2× examined-per-freed target (including the fully futile freed==0
		// case) doubles the step, up to 32×EmptyFreq: scanning less often
		// grows the freeable prefix while the re-examined kept tail stays the
		// same size, so the yield improves at the larger step. Once a scan
		// meets the target the step HOLDS there — that is the equilibrium the
		// doubling was searching for. The base cadence re-arms only when a
		// scan leaves less than one cadence-worth of backlog behind: the
		// residue the backoff was amortizing against is gone. The serving
		// layer's pressure flag overrides the backoff at the trigger (see
		// shouldDrain), not here.
		switch {
		case freed == 0 || examined > 2*uint64(freed):
			ts.drainStep *= 2
			if max := 32 * b.opts.EmptyFreq; ts.drainStep > max {
				ts.drainStep = max
			}
		case ts.store.count < b.opts.EmptyFreq:
			ts.drainStep = b.opts.EmptyFreq
		}
		ts.drainAt = ts.store.count + ts.drainStep
	}
	if b.obs.Enabled() {
		// Record each reclaimed block's retire→free age in epochs — the
		// live distribution behind Fig. 9's unreclaimed growth. The retire
		// epochs must be read before the frees recycle the slots; ages are
		// bucketed locally and flushed once so the per-block cost is a load
		// and an increment, not an atomic RMW.
		now := b.clock.Now()
		var ages obs.BucketCounts
		var sum uint64
		for _, h := range free {
			age := now - b.mem.RetireEpoch(h)
			ages[obs.BucketOf(age)]++
			sum += age
			if si, ok := h.Slot(); ok {
				b.obs.BlockFree(tid, si, age)
			}
		}
		for _, hs := range whole {
			for _, h := range hs {
				age := now - b.mem.RetireEpoch(h)
				ages[obs.BucketOf(age)]++
				sum += age
				if si, ok := h.Slot(); ok {
					b.obs.BlockFree(tid, si, age)
				}
			}
		}
		b.obs.FreeAgeBatch(&ages, sum)
		b.obs.ScanEnd(tid, t0, int(examined), freed)
	}
	if freed > 0 {
		tf := b.obs.PhaseStart()
		b.mem.FreeBatches(tid, append(whole, free)...)
		b.obs.PhaseEnd(obs.PhaseFreeBatch, tf)
	}
}

// scanRetiredBefore is EBR's empty(): free every block retired strictly
// before maxSafe. Within each bucket the retire epochs are sorted (the
// global clock is monotone), so the freeable blocks form a prefix of the
// live window — the scan frees that prefix and stops at the first kept
// block instead of re-walking the backlog, so a scan's cost stays
// O(freed + buckets) no matter how large a stalled reservation has let the
// store grow. (EBR and DEBRA stamp no births, so their store degenerates to
// the single birth-0 bucket and the cost is the flat list's O(freed+1).) A
// fully-freed bucket hands its whole handle array to the allocator; a
// partially-freed one advances its live window and compacts when the dead
// prefix has grown past the compaction gates.
func (b *base) scanRetiredBefore(tid int, maxSafe uint64) {
	ts := &b.ts[tid]
	t0 := b.obs.ScanStart(tid, b.clock.Now())
	ts.scans.Add(1)
	st := &ts.store
	free := ts.freeScratch[:0]
	var whole [][]mem.Handle
	var examined, bFrees uint64
	tSweep := b.obs.PhaseStart()
	out := st.buckets[:0]
	for bi := range st.buckets {
		bk := &st.buckets[bi]
		s0, e := bk.start, len(bk.retires)
		i := s0
		for i < e && bk.retires[i] < maxSafe {
			i++
		}
		examined += uint64(i - s0)
		if i < e {
			examined++ // the first kept block was examined too
		}
		if i == e {
			whole = append(whole, bk.handles[s0:e])
			st.count -= e - s0
			bFrees++
			st.recycle(bk)
			continue
		}
		if i > s0 {
			free = append(free, bk.handles[s0:i]...)
			st.count -= i - s0
			bk.start = i
			bk.maybeCompact()
		}
		out = append(out, *bk)
	}
	st.buckets = out
	st.hint = 0
	b.obs.PhaseEnd(obs.PhaseResidualSweep, tSweep)
	ts.scanned.Add(examined)
	ts.bucketFrees.Add(bFrees)
	b.obs.ScanBuckets(tid, 0, bFrees)
	if b.obs.Enabled() {
		// EBR-style blame: the kept suffix is pinned by exactly the
		// reservation holding the minimum lower endpoint (maxSafe's argmin) —
		// one charge for the whole backlog, the suffix is never walked.
		blame := b.blameScratch(tid)
		if st.count > 0 {
			if w, lo := b.res.MinLowerSlot(); lo != epoch.None {
				charge(blame, w, uint64(st.count))
			}
		}
		b.obs.PinBlame(tid, blame)
	}
	ts.freeScratch = free
	b.finishScan(tid, free, whole, examined, t0)
}

// interval is one reserved epoch range [lo, hi]. The conflict test of
// Fig. 5 line 26: a block is protected iff some interval satisfies
// birth <= hi && retire >= lo. The snapshot is taken once per scan; each
// interval was published by its thread, and any thread that read a pointer
// to a scanned block before its retirement had already published a covering
// interval, so a snapshot sees it. tid remembers the reserving thread for
// pinned-memory blame attribution (kept blocks are charged to the witness
// interval's tid); it plays no part in the conflict test itself.
type interval struct {
	lo, hi uint64
	tid    int32
}

func (b *base) snapshotIntervals(buf []interval) []interval {
	buf = buf[:0]
	for i := 0; i < b.res.Len(); i++ {
		r := b.res.At(i)
		lo, hi := r.Lower(), r.Upper()
		if lo == epoch.None && hi == epoch.None {
			continue
		}
		buf = append(buf, interval{lo, hi, int32(i)})
	}
	return buf
}

// conflicts is the naive conflict test: a linear sweep over the snapshot
// per block, O(|reservations|) each. It is the reference the summarized
// test is checked against (props tests) — scans use resSummary instead.
func conflicts(ivs []interval, birth, retire uint64) bool {
	for _, iv := range ivs {
		if birth <= iv.hi && retire >= iv.lo {
			return true
		}
	}
	return false
}

// resSummary is a per-scan digest of the reservation intervals that turns
// the naive O(|reservations|) per-block conflict sweep into O(1) for the
// common cases and O(log |reservations|) in general:
//
//   - ivs sorted by lower endpoint with prefHi[i] = max(ivs[..i].hi) makes
//     "∃ interval: birth <= hi && retire >= lo" equivalent to "among the
//     intervals with lo <= retire (a sorted prefix, found by binary
//     search), the max upper endpoint is >= birth".
//   - minLower (= ivs[0].lo) gives the one-comparison fast path: a block
//     with retire < minLower predates every reservation and is free.
//   - [winLo, winHi] is the protected window of the interval with the
//     largest upper endpoint (smallest such lo on ties): any block whose
//     retire epoch falls inside it conflicts regardless of birth (birth <=
//     retire <= winHi and retire >= winLo), so a run of consecutive blocks
//     retired inside the window is kept wholesale without per-block tests.
type resSummary struct {
	ivs      []interval
	prefHi   []uint64
	prefIdx  []int32 // index into ivs achieving prefHi[i] (blame witness)
	minLower uint64  // epoch.None when no reservation is published
	winLo    uint64  // protected window; winLo > winHi when empty
	winHi    uint64
	winTid   int32 // tid of the window's interval; -1 when the window is empty
}

// build digests the snapshot (the slice is retained and re-sorted in
// place).
func (s *resSummary) build(ivs []interval) {
	s.ivs = ivs
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	s.prefHi = s.prefHi[:0]
	s.prefIdx = s.prefIdx[:0]
	maxHi := uint64(0)
	maxIdx := int32(0)
	for i, iv := range ivs {
		if iv.hi > maxHi {
			maxHi = iv.hi
			maxIdx = int32(i)
		}
		s.prefHi = append(s.prefHi, maxHi)
		s.prefIdx = append(s.prefIdx, maxIdx)
	}
	s.minLower = epoch.None
	s.winLo, s.winHi = 1, 0 // empty window
	s.winTid = -1
	if len(ivs) == 0 {
		return
	}
	s.minLower = ivs[0].lo
	s.winHi = maxHi
	for _, iv := range ivs { // smallest lo among intervals reaching maxHi
		if iv.hi == maxHi {
			s.winLo = iv.lo
			s.winTid = iv.tid
			break
		}
	}
}

// conflicts is the summarized form of the Fig. 5 conflict test; it returns
// exactly what conflicts(ivs, birth, retire) returns on the same snapshot
// (the differential property test in scan_test.go proves the equivalence).
func (s *resSummary) conflicts(birth, retire uint64) bool {
	if retire < s.minLower {
		return false
	}
	// Largest prefix of intervals with lo <= retire.
	j := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].lo > retire })
	return j > 0 && s.prefHi[j-1] >= birth
}

// witness returns the tid the summarized conflict test certifies
// conflicts(birth, retire) with — the max-upper interval among those with
// lo <= retire — or -1 when there is no conflict. This is the
// blame-charging rule (DESIGN.md §9): a kept block is charged to exactly
// the reservation the conflict test would name, so a keep-all corner test
// charges its whole bucket to one witness in O(log |reservations|) and the
// attribution costs nothing the scan was not already paying.
func (s *resSummary) witness(birth, retire uint64) int {
	if retire < s.minLower {
		return -1
	}
	j := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].lo > retire })
	if j > 0 && s.prefHi[j-1] >= birth {
		return int(s.ivs[s.prefIdx[j-1]].tid)
	}
	return -1
}

// summarize snapshots the reservation table into tid's summary scratch.
func (b *base) summarize(tid int) *resSummary {
	t0 := b.obs.PhaseStart()
	sum := &b.ts[tid].sum
	sum.build(b.snapshotIntervals(sum.ivs))
	b.obs.PhaseEnd(obs.PhaseSummarize, t0)
	return sum
}

// blameScratch returns tid's zeroed per-witness blame accumulator, sized to
// the reservation table. Only the observability-on scan paths allocate it.
func (b *base) blameScratch(tid int) []uint64 {
	ts := &b.ts[tid]
	n := b.res.Len()
	if cap(ts.blame) < n {
		ts.blame = make([]uint64, n)
	}
	ts.blame = ts.blame[:n]
	for i := range ts.blame {
		ts.blame[i] = 0
	}
	return ts.blame
}

// charge adds n kept blocks to witness tid w's blame row (no-op for the
// blame-off nil slice and the no-witness w = -1).
func charge(blame []uint64, w int, n uint64) {
	if blame != nil && w >= 0 && w < len(blame) {
		blame[w] += n
	}
}

// scanSummarized is the interval schemes' and HE's empty(): one summary per
// scan, then a sweep over the bucketed store that decides as much as it can
// wholesale before touching blocks.
//
// The whole-bucket (and whole-store) decisions rest on the conflict test's
// monotonicity in the block's lifetime corner: conflicts(birth, retire) can
// only gain witnesses as birth decreases or retire increases. Two corner
// lemmas follow, both exact (not approximations):
//
//   - Free-all: if the most-protectable corner (birthLo, retireHi) — the
//     earliest birth paired with the latest retire over the bucket — has no
//     conflict, then no block in the bucket has one (every block's interval
//     is contained in the corner's), and the whole bucket frees on one test.
//   - Keep-all: if conflicts(birthHi, retireLo) holds, the witnessing
//     reservation satisfies lo <= retireLo and hi >= birthHi, so it covers
//     every block in the bucket (each has retire >= retireLo and birth <=
//     birthHi), and the whole bucket is kept on one test. (The converse
//     direction needs the single-witness form, which is why the test uses
//     the raw conflict predicate rather than reasoning per-endpoint.)
//
// The same two tests run once against the whole store's corners first, so a
// backlog fully pinned by one stalled reader costs ONE conflict test per
// scan, and a quiescent drain frees everything with two. Only buckets that
// straddle a reservation boundary are swept block-by-block — and that
// residual sweep is a branch-light pass over the bucket's packed epoch
// arrays: a binary-searched prefix free below minLower, protected-window
// runs kept in one jump, and an amortized-O(1) merge pointer for the rest
// (retires are sorted within a bucket).
func (b *base) scanSummarized(tid int, sum *resSummary) {
	ts := &b.ts[tid]
	t0 := b.obs.ScanStart(tid, b.clock.Now())
	ts.scans.Add(1)
	st := &ts.store
	free := ts.freeScratch[:0]
	var whole [][]mem.Handle
	var examined, bSkips, bFrees uint64
	var blame []uint64
	if b.obs.Enabled() {
		blame = b.blameScratch(tid)
	}

	tDecide := b.obs.PhaseStart()
	swept := false
	if st.count > 0 {
		gBLo, gBHi, gRLo, gRHi := st.corners()
		examined++
		if sum.conflicts(gBHi, gRLo) {
			// Store-level keep-all: one reservation covers every block —
			// charge the whole backlog to that single witness, O(1).
			bSkips += uint64(len(st.buckets))
			charge(blame, sum.witness(gBHi, gRLo), uint64(st.count))
			b.obs.BucketSkip(tid, gBLo, gBHi)
		} else {
			examined++
			if !sum.conflicts(gBLo, gRHi) {
				// Store-level free-all: nothing is protected.
				bFrees += uint64(len(st.buckets))
				for bi := range st.buckets {
					bk := &st.buckets[bi]
					whole = append(whole, bk.handles[bk.start:])
					st.recycle(bk)
				}
				st.buckets = st.buckets[:0]
				st.count = 0
				st.hint = 0
			} else {
				b.obs.PhaseEnd(obs.PhaseBucketDecide, tDecide)
				swept = true
				examined = b.sweepBuckets(tid, st, sum, &free, &whole, examined, &bSkips, &bFrees, blame)
			}
		}
	}
	if !swept {
		b.obs.PhaseEnd(obs.PhaseBucketDecide, tDecide)
	}

	ts.scanned.Add(examined)
	ts.bucketSkips.Add(bSkips)
	ts.bucketFrees.Add(bFrees)
	b.obs.ScanBuckets(tid, bSkips, bFrees)
	b.obs.PinBlame(tid, blame)
	ts.freeScratch = free
	b.finishScan(tid, free, whole, examined, t0)
}

// sweepBuckets is scanSummarized's per-bucket pass: corner-test each bucket,
// then sweep block-by-block only the buckets both corner tests fail on.
// blame (nil when observability is off) accumulates kept blocks per witness
// tid; wholesale keeps charge their single witness in O(1), never a walk.
func (b *base) sweepBuckets(tid int, st *retireStore, sum *resSummary, free *[]mem.Handle, whole *[][]mem.Handle, examined uint64, bSkips, bFrees *uint64, blame []uint64) uint64 {
	tSweep := b.obs.PhaseStart()
	out := st.buckets[:0]
	for bi := range st.buckets {
		bk := &st.buckets[bi]
		s0, e := bk.start, len(bk.retires)
		examined++
		if sum.conflicts(bk.birthHi, bk.retires[s0]) {
			// Keep-all corner: one reservation covers the whole bucket.
			*bSkips++
			charge(blame, sum.witness(bk.birthHi, bk.retires[s0]), uint64(e-s0))
			b.obs.BucketSkip(tid, bk.birthLo, bk.birthHi)
			out = append(out, *bk)
			continue
		}
		examined++
		if !sum.conflicts(bk.birthLo, bk.retires[e-1]) {
			// Free-all corner: nothing in the bucket is protected.
			*bFrees++
			*whole = append(*whole, bk.handles[s0:e])
			st.count -= e - s0
			st.recycle(bk)
			continue
		}
		// Residual sweep. Prefix free below minLower first: retires are
		// sorted, so the fast path of the flat scan becomes one binary
		// search plus a bulk append.
		p := s0 + sort.Search(e-s0, func(k int) bool { return bk.retires[s0+k] >= sum.minLower })
		if p > s0 {
			examined++
			*free = append(*free, bk.handles[s0:p]...)
			st.count -= p - s0
			bk.start = p
		}
		w := p // in-place write index for kept entries
		j := 0 // #intervals with lo <= current block's retire (merge pointer)
		for k := p; k < e; {
			r := bk.retires[k]
			if sum.winLo <= r && r <= sum.winHi {
				// Protected-window run: every consecutive block retired at
				// or before winHi is kept without a per-block conflict test.
				q := k + sort.Search(e-k, func(m int) bool { return bk.retires[k+m] > sum.winHi })
				examined++
				charge(blame, int(sum.winTid), uint64(q-k))
				if w != k {
					copy(bk.handles[w:], bk.handles[k:q])
					copy(bk.births[w:], bk.births[k:q])
					copy(bk.retires[w:], bk.retires[k:q])
				}
				w += q - k
				k = q
				continue
			}
			// Segment: every consecutive block retired before the next
			// interval lower endpoint sees the same interval prefix, hence
			// the same protecting max-upper H = prefHi[j-1]. The bucket's
			// birth bounds then decide most segments wholesale: birthHi <= H
			// keeps all (H's interval has lo <= r for the whole segment),
			// birthLo > H frees all (no interval in the prefix reaches any
			// birth). Only a segment H splits falls back to per-block tests —
			// and those are one birth comparison each.
			for j < len(sum.ivs) && sum.ivs[j].lo <= r {
				j++
			}
			segEnd := e
			if j < len(sum.ivs) {
				nlo := sum.ivs[j].lo
				segEnd = k + sort.Search(e-k, func(m int) bool { return bk.retires[k+m] >= nlo })
			}
			examined++
			switch {
			case j == 0:
				*free = append(*free, bk.handles[k:segEnd]...)
				st.count -= segEnd - k
			case bk.birthHi <= sum.prefHi[j-1]:
				charge(blame, int(sum.ivs[sum.prefIdx[j-1]].tid), uint64(segEnd-k))
				if w != k {
					copy(bk.handles[w:], bk.handles[k:segEnd])
					copy(bk.births[w:], bk.births[k:segEnd])
					copy(bk.retires[w:], bk.retires[k:segEnd])
				}
				w += segEnd - k
			case bk.birthLo > sum.prefHi[j-1]:
				*free = append(*free, bk.handles[k:segEnd]...)
				st.count -= segEnd - k
			default:
				h := sum.prefHi[j-1]
				wit := int(sum.ivs[sum.prefIdx[j-1]].tid)
				for m := k; m < segEnd; m++ {
					examined++
					if bk.births[m] <= h {
						charge(blame, wit, 1)
						if blame != nil {
							if si, ok := bk.handles[m].Slot(); ok {
								b.obs.BlockKept(tid, si, wit)
							}
						}
						if w != m {
							bk.handles[w], bk.births[w], bk.retires[w] = bk.handles[m], bk.births[m], bk.retires[m]
						}
						w++
					} else {
						*free = append(*free, bk.handles[m])
						st.count--
					}
				}
			}
			k = segEnd
		}
		bk.truncate(w)
		if bk.live() == 0 {
			st.recycle(bk)
			continue
		}
		bk.maybeCompact()
		out = append(out, *bk)
	}
	st.buckets = out
	st.hint = 0
	b.obs.PhaseEnd(obs.PhaseResidualSweep, tSweep)
	return examined
}

// publishSpan records the publish leg of a traced block's lifecycle span:
// the handle was stored into a shared pointer. Scheme Write/CAS sites gate
// the call on s.obs != nil so the store hot path pays one predictable
// branch when observability is off; the sampling mask inside BlockPublish
// then drops untraced slots.
func (b *base) publishSpan(tid int, h mem.Handle) {
	if si, ok := h.Slot(); ok {
		b.obs.BlockPublish(tid, si)
	}
}

// scanIntervals is the shared empty() of POIBR, TagIBR and 2GEIBR: digest
// the reservation table once, then scan against the summary.
func (b *base) scanIntervals(tid int) {
	b.scanSummarized(tid, b.summarize(tid))
}

// sortedContains reports whether x occurs in the sorted slice s.
func sortedContains(s []uint64, x uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// TotalUnreclaimed sums Unreclaimed over all threads.
func TotalUnreclaimed(s Scheme, threads int) int {
	total := 0
	for tid := 0; tid < threads; tid++ {
		total += s.Unreclaimed(tid)
	}
	return total
}

// DrainAll forces a scan on every thread id; used at shutdown and in tests.
// It must be called only when no operations are in flight.
func DrainAll(s Scheme, threads int) {
	for tid := 0; tid < threads; tid++ {
		s.Drain(tid)
	}
}

// canonicalName resolves the accepted aliases ("nomm", "epoch", "2ge") to
// their registry names; unknown strings pass through unchanged.
func canonicalName(name string) string {
	switch name {
	case "nomm":
		return "none"
	case "epoch":
		return "ebr"
	case "2ge":
		return "2geibr"
	}
	return name
}

// schemeEntry couples one registry name with its constructor. The registry
// table below is the single source of truth behind New, Names, Schemes and
// IsScheme, so registering a scheme in one place registers it everywhere —
// the previous hand-duplicated Names/Schemes lists could silently disagree.
type schemeEntry struct {
	name string
	ctor func(Memory, Options) Scheme
}

// registry lists every scheme in the order the paper's plots use (NoMM
// first, then the baselines, then the IBR family), followed by the
// post-paper engines (Hyaline, neutralization EBR).
var registry = []schemeEntry{
	{"none", func(m Memory, o Options) Scheme { return NewNoMM(m, o) }},
	{"ebr", func(m Memory, o Options) Scheme { return NewEBR(m, o) }},
	{"hp", func(m Memory, o Options) Scheme { return NewHP(m, o) }},
	{"he", func(m Memory, o Options) Scheme { return NewHE(m, o) }},
	{"poibr", func(m Memory, o Options) Scheme { return NewPOIBR(m, o) }},
	{"tagibr", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagCAS) }},
	{"tagibr-faa", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagFAA) }},
	{"tagibr-wcas", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagWCAS) }},
	{"tagibr-tpa", func(m Memory, o Options) Scheme { return NewTagIBR(m, o, TagTPA) }},
	{"2geibr", func(m Memory, o Options) Scheme { return NewTwoGE(m, o) }},
	{"hyaline", func(m Memory, o Options) Scheme { return NewHyaline(m, o) }},
	{"debra", func(m Memory, o Options) Scheme { return NewDEBRA(m, o) }},
}

// New constructs a scheme by registry name over the given Memory.
// Names: "none", "ebr", "hp", "he", "poibr", "tagibr", "tagibr-faa",
// "tagibr-wcas", "tagibr-tpa", "2geibr", "hyaline", "debra"
// (aliases: "nomm", "epoch", "2ge").
func New(name string, m Memory, o Options) (Scheme, error) {
	c := canonicalName(name)
	for _, e := range registry {
		if e.name == c {
			return e.ctor(m, o), nil
		}
	}
	return nil, fmt.Errorf("core: unknown scheme %q", name)
}

// Names lists every registered scheme name in the order the paper's plots
// use (NoMM first, then the baselines, then the IBR family, then the
// post-paper engines). It is derived from the registry table, so it cannot
// drift from New or Schemes.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Schemes returns the registered scheme names sorted lexically — the form
// command-line tools print when rejecting an unknown -d flag. Same set as
// Names, same table.
func Schemes() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// IsScheme reports whether name (or one of its aliases) is a registered
// scheme, without constructing one.
func IsScheme(name string) bool {
	c := canonicalName(name)
	for _, e := range registry {
		if e.name == c {
			return true
		}
	}
	return false
}
