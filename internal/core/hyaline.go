package core

import (
	"sync/atomic"

	"ibr/internal/mem"
)

// Hyaline is the snapshot-free reclamation scheme of Nikolaev and Ravindran
// ("Snapshot-Free, Transparent, and Robust Memory Reclamation"; see
// PAPERS.md), adapted to this repository's slab/handle substrate. Where the
// epoch and interval schemes decide reclaimability by scanning retire lists
// against a snapshot of every thread's reservation, Hyaline hands retired
// memory off: retired blocks are grouped into batches that carry a shared
// reference counter, a retiring thread enqueues one link node per *active*
// thread onto that thread's lock-free retirement list, and each thread
// drops its references when it leaves its operation. A batch is freed by
// whichever thread drops the last reference — no thread ever walks another
// thread's retire list, and no scan re-examines a backlog.
//
// Mapping from the paper's node overlay to this substrate: the paper stores
// REFS (the batch reference counter) in the batch's first retired node and
// NREF (a pointer back to the REFS node) plus the per-slot list link in
// every other node, overlaying reclamation metadata on the dead blocks
// themselves. Here nodes are typed slots of a mem.Pool, so the scheme may
// not alias their bodies; the overlay is therefore carried by scheme-owned
// descriptors with the same roles and lifetimes: hyBatch is the REFS node
// (counter + the batch's mem.Handle slab slots), and hyNode is an NREF node
// (batch back-pointer + per-slot list link). Blocks still return to the
// allocator through one mem.Pool.FreeBatch per batch.
//
// Cost model: StartOp is one store, Read/Write/CAS are uninstrumented
// (Hyaline is "transparent" — no per-access work at all, like EBR), EndOp
// is one swap plus one counter decrement per batch handed to this thread
// during the operation, and retire is O(1) amortized (one CAS per active
// thread per EmptyFreq retirements). Reclamation never scans: the
// examined-per-freed ratio stays ~1 no matter how many threads stall.
//
// Like EBR — and unlike the IBR family — plain Hyaline is not robust: a
// thread that stalls inside an operation holds its slot reference forever,
// and every batch retired while it is active keeps one reference it will
// never drop. (The paper's robust variants graft hazard eras on top.) The
// serving layer restores the bound operationally: quarantining a stalled
// tid force-leaves its slot via ClearReservation, dropping exactly the
// references the stalled thread would have dropped, so its backlog drains
// without the stall ending.
type Hyaline struct {
	base
	slots []hySlot
	// inflight[tid] counts blocks tid has sealed into batches that are not
	// yet freed. Decremented (possibly by another thread) when the batch
	// frees; together with the unsealed accumulation in ts[tid].retired it
	// makes Unreclaimed exact, which the serving layer's admission
	// watermarks rely on.
	inflight []paddedCounter
}

// hyBatch is a batch descriptor — the REFS node of the paper's overlay. refs
// is the number of outstanding link nodes not yet traversed by a leaving
// thread, held at hyRefsBias while the sealer is still enqueuing so a fast
// concurrent leave cannot free the batch mid-handoff.
type hyBatch struct {
	refs   atomic.Int64
	owner  int32          // retiring tid, for the unreclaimed accounting
	blocks []retiredBlock // retire-epoch order (the clock is monotone)
}

// hyNode is one per-slot retirement-list link — an NREF node: it names its
// batch (the paper's NREF back-pointer) and the next node of the slot list
// it was pushed onto. A node is pushed to exactly one slot list and
// traversed exactly once, by the leave() that detaches that list.
type hyNode struct {
	batch *hyBatch
	next  *hyNode
}

// hyInactive marks a slot whose thread is outside any operation. It is a
// distinguished head value rather than a separate flag so that "is the
// thread active?" and "what is its list?" are one atomic word — the
// paper's packed (HRef, HPtr) head. A retiring thread that reads it skips
// the slot; a CAS push can therefore never land on a session that already
// ended, which is what makes every enqueued reference certain to be
// dropped.
var hyInactive = &hyNode{}

// hySlot is one thread's retirement-list head, padded so enter/leave on
// neighbouring tids never share a cache line.
type hySlot struct {
	_    [64]byte
	head atomic.Pointer[hyNode]
	_    [64]byte
}

// hyRefsBias holds a sealing batch's reference counter away from zero until
// every push has completed; the sealer then adds (pushed - hyRefsBias) and
// frees on zero itself if no active thread took a reference.
const hyRefsBias = int64(1) << 32

// NewHyaline builds a Hyaline reclaimer. Batches seal every EmptyFreq
// retirements (the same cadence the scanning schemes scan on).
func NewHyaline(m Memory, o Options) *Hyaline {
	o = o.withDefaults()
	s := &Hyaline{
		base:     newBase("hyaline", m, o),
		slots:    make([]hySlot, o.Threads),
		inflight: make([]paddedCounter, o.Threads),
	}
	// Hyaline seals on the fixed EmptyFreq cadence: the watermark-driven
	// adaptive drain learns from a scan's freed/examined yield, but a seal
	// is a handoff — its yield says nothing about protection — and backing
	// off would only grow the sealed batches.
	s.adaptive = false
	for i := range s.slots {
		s.slots[i].head.Store(hyInactive)
	}
	return s
}

// StartOp activates tid's slot with an empty retirement list. From here
// until EndOp, every batch sealed anywhere gains one reference owed by this
// thread — the handoff that replaces reservation snapshots.
func (s *Hyaline) StartOp(tid int) {
	sl := &s.slots[tid]
	if sl.head.Load() == hyInactive {
		// Plain store is sound: pushers never CAS against hyInactive (they
		// skip inactive slots), so no push can interleave between the load
		// and the store.
		sl.head.Store(nil)
	}
}

// EndOp deactivates the slot and drops this thread's reference from every
// batch handed to it during the operation, freeing the batches it was the
// last to hold.
func (s *Hyaline) EndOp(tid int) { s.leave(tid, tid) }

// RestartOp is leave + re-enter: it drops every reference accumulated so
// far (the caller holds no node references across the call), bounding what
// a starving-but-live thread can pin, exactly like the interval schemes'
// reservation renewal.
func (s *Hyaline) RestartOp(tid int) {
	s.leave(tid, tid)
	s.slots[tid].head.Store(nil)
}

// Alloc allocates without epoch stamping: Hyaline keeps no birth epochs
// (retire epochs are stamped only so retire lists stay mergeable and ages
// observable). On exhaustion it seals and hands off its own accumulation
// once, which frees immediately when no thread is active.
func (s *Hyaline) Alloc(tid int) mem.Handle { return s.allocPlain(tid, s.Drain) }

// Retire stamps the retire epoch and accumulates the block into tid's open
// batch (ts[tid].retired, kept in retire-epoch order by the shared retire
// helper); every EmptyFreq retirements the batch seals and is handed to the
// active slots.
func (s *Hyaline) Retire(tid int, h mem.Handle) { s.retire(tid, h, s.Drain) }

// Read is an uninstrumented load — Hyaline's transparency: no per-access
// protocol at all, the active slot already guarantees every batch retired
// during the operation waits for this thread's leave.
func (s *Hyaline) Read(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// ReadRoot is Read.
func (s *Hyaline) ReadRoot(tid, idx int, p *Ptr) mem.Handle { return p.Raw() }

// Write is an uninstrumented store (plus the traced-span publish hook).
func (s *Hyaline) Write(tid int, p *Ptr, h mem.Handle) {
	p.setRaw(h)
	if s.obs != nil {
		s.publishSpan(tid, h)
	}
}

// CompareAndSwap is an uninstrumented CAS.
func (s *Hyaline) CompareAndSwap(tid int, p *Ptr, old, new mem.Handle) bool {
	if p.bits.CompareAndSwap(uint64(old), uint64(new)) {
		if s.obs != nil {
			s.publishSpan(tid, new)
		}
		return true
	}
	return false
}

// Drain seals tid's open batch and hands it off regardless of the EmptyFreq
// cadence. When no thread is active the batch frees immediately (the
// quiescent DrainAll path); otherwise the blocks free as the active threads
// leave — there is no list to rescan either way.
func (s *Hyaline) Drain(tid int) { s.sealAndHand(tid) }

// Unreclaimed counts tid's blocks that are retired and not yet freed: the
// unsealed accumulation plus the blocks in flight inside sealed batches.
func (s *Hyaline) Unreclaimed(tid int) int {
	return int(s.ts[tid].unreclaimed.Load() + s.inflight[tid].n.Load())
}

// Robust is false: a stalled active thread never drops its references, so —
// exactly like EBR's pinned epoch — the backlog behind it grows without
// bound. The serving layer's quarantine restores the bound by force-leaving
// the stalled slot (ClearReservation).
func (s *Hyaline) Robust() bool { return false }

// ClearReservation is Hyaline's neutralization hook: EndOp executed on
// tid's behalf. It force-leaves the slot, dropping every reference the
// stalled (parked or dead — the caller's evidence) holder would have
// dropped. Freed slots are returned under tid's own pool cache, which the
// same evidence proves unshared.
func (s *Hyaline) ClearReservation(tid int) { s.leave(tid, tid) }

// leave ends slot's active session: detach the session's retirement list in
// one swap and drop one reference from every batch on it. freeTid names the
// thread state charged for the traversal and the pool cache that receives
// any freed slots (the leaver itself, on every current path).
func (s *Hyaline) leave(slot, freeTid int) {
	old := s.slots[slot].head.Swap(hyInactive)
	if old == hyInactive || old == nil {
		return
	}
	ts := &s.ts[freeTid]
	t0 := s.obs.ScanStart(freeTid, s.clock.Now())
	ts.scans.Add(1)
	free := ts.freeScratch[:0]
	examined := uint64(0)
	for n := old; n != nil; n = n.next {
		examined++ // one decrement per link node: the handoff's whole cost
		b := n.batch
		if b.refs.Add(-1) == 0 {
			for _, rb := range b.blocks {
				free = append(free, rb.h)
			}
			examined += uint64(len(b.blocks))
			s.inflight[b.owner].n.Add(-int64(len(b.blocks)))
		}
	}
	ts.scanned.Add(examined)
	ts.freeScratch = free
	s.finishScan(freeTid, free, nil, examined, t0)
}

// sealAndHand closes tid's open batch and pushes one link node onto every
// active slot's retirement list. The bias keeps the batch unfreeable until
// the sealer has finished counting; if no slot was active, the sealer
// itself frees the batch — the path that makes quiescent drains immediate.
func (s *Hyaline) sealAndHand(tid int) {
	ts := &s.ts[tid]
	if ts.store.count == 0 {
		return
	}
	t0 := s.obs.ScanStart(tid, s.clock.Now())
	ts.scans.Add(1)
	// takeAll drains the open accumulation in retire-epoch order (Hyaline
	// stamps no births, so the store is the single birth-0 bucket and this
	// is a straight copy).
	blocks := ts.store.takeAll()
	ts.unreclaimed.Store(0)
	s.inflight[tid].n.Add(int64(len(blocks)))

	b := &hyBatch{owner: int32(tid), blocks: blocks}
	b.refs.Store(hyRefsBias)
	pushed := int64(0)
	examined := uint64(0)
	for i := range s.slots {
		examined++ // one head probe per slot: the seal's whole scan cost
		n := &hyNode{batch: b}
		for {
			old := s.slots[i].head.Load()
			if old == hyInactive {
				break
			}
			n.next = old
			if s.slots[i].head.CompareAndSwap(old, n) {
				pushed++
				break
			}
		}
	}
	if b.refs.Add(pushed-hyRefsBias) == 0 {
		// No active thread took a reference: the batch is free now.
		free := ts.freeScratch[:0]
		for _, rb := range blocks {
			free = append(free, rb.h)
		}
		examined += uint64(len(blocks))
		s.inflight[tid].n.Add(-int64(len(blocks)))
		ts.scanned.Add(examined)
		ts.freeScratch = free
		s.finishScan(tid, free, nil, examined, t0)
		return
	}
	ts.scanned.Add(examined)
	s.finishScan(tid, nil, nil, examined, t0)
}
