#!/usr/bin/env python3
"""rangesmoke gate (see Makefile): inspect the mid-run /debug/vars snapshot
and assert the serving path actually exercised what the smoke claims to —
range legs ran on every shard, TTL expirations happened and retired through
the normal scheme path (not some side channel), and retired-but-unreclaimed
stayed bounded while scans were in flight (the under-scan high-water mark,
the paper's point: interval schemes bound garbage under long readers).

Usage: check_rangesmoke.py <vars.json> <under-scan-bound>
"""
import json
import sys


def main() -> int:
    vars_path, bound = sys.argv[1], int(sys.argv[2])
    with open(vars_path) as f:
        d = json.load(f)["ibrd"]

    errs = []
    # No legs-per-scan arithmetic here: the snapshot is scraped mid-run, so
    # in-flight scans have some shard legs counted and others not yet.
    if d["range_legs"] == 0:
        errs.append("no range legs executed")
    if d["expired"] == 0:
        errs.append("no TTL expirations observed")
    if d["retired_expiry"] == 0:
        errs.append("no retirements attributed to expiry")
    if d["retired_user"] == 0:
        errs.append("no retirements attributed to user ops")
    hw = d["unreclaimed_under_scan_hw"]
    if hw > bound:
        errs.append(f"under-scan unreclaimed high-water {hw} exceeds bound {bound}")

    if errs:
        print("rangesmoke check: FAIL: " + "; ".join(errs))
        return 1
    print(
        f"rangesmoke check: {d['range_legs']} range legs over {d['shards']} shards, "
        f"{d['expired']} expired, retired user/expiry "
        f"{d['retired_user']}/{d['retired_expiry']}, under-scan HW {hw} <= {bound}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
