#!/usr/bin/env python3
"""tracesmoke assertions over a captured Perfetto trace and a /metrics scrape.

Usage: check_trace.py TRACE_JSON METRICS_TXT STALLER_TID

Asserts, exiting non-zero with a diagnostic on the first failure:
  1. TRACE_JSON parses and holds a non-empty traceEvents array.
  2. At least one traced block completed a full lifecycle: a "live" slice
     and a non-truncated "retired" slice on the same blocks-process track
     (the encoder only emits that pair on a witnessed alloc->retire->free).
  3. At least one wire-propagated "op" slice with a non-zero trace ID.
  4. ibr_pinned_blocks charges the plurality of pinned blocks to
     STALLER_TID, and charges it more than zero.
"""

import json
import re
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 4:
        fail(f"usage: {sys.argv[0]} TRACE_JSON METRICS_TXT STALLER_TID")
    trace_path, metrics_path, staller = sys.argv[1], sys.argv[2], int(sys.argv[3])

    with open(trace_path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{trace_path} is not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not events:
        fail(f"{trace_path} has no traceEvents")

    # The blocks process is pid 2, rings pid 1 (obs/trace.go).
    lives, completes, ops = set(), set(), 0
    for ev in events:
        if ev.get("ph") != "X":
            continue
        if ev.get("pid") == 2 and ev.get("name") == "live":
            lives.add(ev.get("tid"))
        if (ev.get("pid") == 2 and ev.get("name") == "retired"
                and not ev.get("args", {}).get("truncated")):
            completes.add(ev.get("tid"))
        if (ev.get("pid") == 1 and ev.get("name") == "op"
                and ev.get("args", {}).get("trace_id", "0x0").strip("0x")):
            ops += 1
    full = lives & completes
    if not full:
        fail(f"no complete alloc→retire→freed span "
             f"(live slices on {len(lives)} slots, complete retired on {len(completes)})")
    if ops == 0:
        fail("no op spans carrying a wire trace ID")

    pinned = {}
    pat = re.compile(r'^ibr_pinned_blocks\{[^}]*tid="(-?\d+)"[^}]*\} (\d+(?:\.\d+)?)')
    with open(metrics_path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                tid = int(m.group(1))
                pinned[tid] = pinned.get(tid, 0) + float(m.group(2))
    if not pinned:
        fail(f"no ibr_pinned_blocks series in {metrics_path}")
    if pinned.get(staller, 0) <= 0:
        fail(f"staller tid {staller} pins nothing; table {pinned}")
    top = max(pinned, key=pinned.get)
    if top != staller:
        fail(f"top pinner is tid {top} ({pinned[top]:.0f} blocks), "
             f"want staller tid {staller}; table {pinned}")

    print(f"check_trace: OK: {len(full)} complete block spans, {ops} traced op spans, "
          f"staller tid {staller} pins {pinned[staller]:.0f} blocks "
          f"({100 * pinned[staller] / sum(pinned.values()):.0f}% of charged)")


if __name__ == "__main__":
    main()
