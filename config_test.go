package ibr

import (
	"errors"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" for valid
	}{
		{"zero value", Config{}, ""},
		{"full valid", Config{Scheme: "ebr", Threads: 4, EpochFreq: 10, EmptyFreq: 5}, ""},
		{"unknown scheme", Config{Scheme: "lru"}, "unknown scheme"},
		{"negative threads", Config{Threads: -1}, "Threads"},
		{"negative freq", Config{EpochFreq: -1}, "EpochFreq"},
		{"negative buckets", Config{Buckets: -2}, "Buckets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestConfigValidateListsSchemes: the unknown-scheme error names the valid
// choices so a typo in a flag is self-correcting.
func TestConfigValidateListsSchemes(t *testing.T) {
	err := Config{Scheme: "nope"}.Validate()
	if err == nil {
		t.Fatal("expected an error")
	}
	for _, s := range []string{"ebr", "tagibr", "2geibr"} {
		if !strings.Contains(err.Error(), s) {
			t.Fatalf("error %q does not list scheme %q", err, s)
		}
	}
}

func TestNewMapValidates(t *testing.T) {
	if _, err := NewMap("hashmap", Config{Scheme: "bogus", Threads: 2}); err == nil {
		t.Fatal("NewMap accepted an unknown scheme")
	}
}

// TestErrorSentinelsDistinct: the exported sentinels are pairwise distinct
// under errors.Is, so callers can branch on exactly the failure they mean.
func TestErrorSentinelsDistinct(t *testing.T) {
	sentinels := []error{ErrBusy, ErrShedding, ErrClosed, ErrPoolExhausted}
	for i, a := range sentinels {
		if !errors.Is(a, a) {
			t.Fatalf("sentinel %d not errors.Is itself", i)
		}
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %d and %d alias each other", i, j)
			}
		}
	}
}
