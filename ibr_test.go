package ibr

import (
	"sync"
	"testing"
	"time"
)

func TestFacadeNewMapAllStructures(t *testing.T) {
	for _, structure := range []string{"list", "hashmap", "nmtree", "bonsai", "skiplist"} {
		m, err := NewMap(structure, Config{Scheme: "tagibr", Threads: 2})
		if err != nil {
			t.Fatalf("NewMap(%q): %v", structure, err)
		}
		if !m.Insert(0, 1, 2) {
			t.Fatalf("%s: insert failed", structure)
		}
		if v, ok := m.Get(1, 1); !ok || v != 2 {
			t.Fatalf("%s: get = (%d,%v)", structure, v, ok)
		}
		if !m.Remove(0, 1) {
			t.Fatalf("%s: remove failed", structure)
		}
	}
}

func TestFacadeSchemeList(t *testing.T) {
	schemes := Schemes()
	// 9 paper schemes + "none" + the two post-paper engines (hyaline, debra).
	if len(schemes) != 12 {
		t.Fatalf("Schemes() has %d entries, want 12", len(schemes))
	}
	for _, s := range schemes {
		if s == "" {
			t.Fatal("empty scheme name")
		}
	}
}

func TestFacadeSupportsMatrix(t *testing.T) {
	if Supports("poibr", "hashmap") {
		t.Fatal("POIBR must not run mutable structures")
	}
	if !Supports("poibr", "stack") {
		t.Fatal("POIBR must run the Treiber stack")
	}
	if Supports("hp", "skiplist") {
		t.Fatal("HP must not run the skip list")
	}
}

func TestFacadeStackQueue(t *testing.T) {
	st, err := NewStack(Config{Scheme: "poibr", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Push(0, 9)
	if v, ok := st.Pop(0); !ok || v != 9 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}
	q, err := NewQueue(Config{Scheme: "2geibr", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(0, 3)
	q.Enqueue(0, 4)
	if v, _ := q.Dequeue(0); v != 3 {
		t.Fatalf("Dequeue = %d, want 3 (FIFO)", v)
	}
}

func TestFacadeDrain(t *testing.T) {
	m, _ := NewMap("hashmap", Config{Scheme: "tagibr", Threads: 2})
	for k := uint64(0); k < 100; k++ {
		m.Insert(0, k, k)
	}
	for k := uint64(0); k < 100; k++ {
		m.Remove(0, k)
	}
	inst := m.(Instrumented)
	Drain(inst, 2)
	if live := inst.PoolStats().Live(); live != 0 {
		t.Fatalf("%d live after Drain of an emptied map", live)
	}
}

func TestFacadeRunBench(t *testing.T) {
	res, err := RunBench(BenchConfig{
		Structure: "hashmap", Scheme: "2geibr", Threads: 2,
		Duration: 20 * time.Millisecond, KeyRange: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Mops <= 0 {
		t.Fatalf("bench made no progress: %+v", res)
	}
}

func TestFacadeConfigTuning(t *testing.T) {
	// Non-default knobs must flow through to the scheme.
	m, err := NewMap("list", Config{
		Scheme: "tagibr", Threads: 3, EpochFreq: 7, EmptyFreq: 3, Slots: 4,
		PoolSlots: 1 << 10, Buckets: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the tiny pool; the structure must fail operations cleanly
	// rather than wedge.
	okCount := 0
	for k := uint64(0); k < 2000; k++ {
		if m.Insert(0, k, k) {
			okCount++
		}
	}
	if okCount == 0 || okCount > 1024 {
		t.Fatalf("inserted %d into a 1024-slot pool", okCount)
	}
}

func TestFacadeConcurrentSmoke(t *testing.T) {
	m, _ := NewMap("skiplist", Config{Scheme: "tagibr-wcas", Threads: 4})
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			base := uint64(tid) * 10000
			for k := uint64(0); k < 2000; k++ {
				m.Insert(tid, base+k, k)
			}
			for k := uint64(0); k < 2000; k += 2 {
				m.Remove(tid, base+k)
			}
		}(tid)
	}
	wg.Wait()
	if got := len(m.Keys()); got != 4000 {
		t.Fatalf("%d keys, want 4000", got)
	}
}

func TestKeyLimitExported(t *testing.T) {
	if KeyLimit != uint64(1)<<62 {
		t.Fatalf("KeyLimit = %d", KeyLimit)
	}
}

func TestFacadeConcreteTypes(t *testing.T) {
	m, _ := NewMap("bonsai", Config{Scheme: "poibr", Threads: 1})
	b, ok := m.(*Bonsai)
	if !ok {
		t.Fatal("bonsai Map not assertable to *ibr.Bonsai")
	}
	for k := uint64(0); k < 20; k++ {
		b.Insert(0, k, k)
	}
	n := 0
	b.Range(0, 5, 14, func(k, v uint64) bool { n++; return true })
	if n != 10 {
		t.Fatalf("Range visited %d, want 10", n)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	l, _ := NewMap("list", Config{Scheme: "ebr", Threads: 1})
	if _, ok := l.(*List); !ok {
		t.Fatal("list Map not assertable to *ibr.List")
	}
	sl, _ := NewMap("skiplist", Config{Scheme: "tagibr", Threads: 1})
	s := sl.(*SkipList)
	s.Insert(0, 1, 1)
	s.Sweep(0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
