# Interval-Based Memory Reclamation — reproduction workflow
# (the artifact appendix's `make` / test-script / plot pipeline, in Go)

GO ?= go

.PHONY: all build vet test race stress bench figs plots examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Correctness soak across every (structure × scheme) pair.
stress:
	$(GO) run ./cmd/ibrstress -all -i 2

# testing.B benchmarks: one family per paper figure + ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure's data (CSV + ASCII tables + stall curves)…
figs:
	$(GO) run ./cmd/ibrfigs -fig all -i 0.5 -o data

# …and render the SVG charts from it.
plots:
	$(GO) run ./cmd/ibrplot -i data -o data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pstack
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/stallrobust
	$(GO) run ./examples/kvstore -ms 150

clean:
	rm -f data/*.csv data/*.svg data/*.txt
