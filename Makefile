# Interval-Based Memory Reclamation — reproduction workflow
# (the artifact appendix's `make` / test-script / plot pipeline, in Go)

GO ?= go

.PHONY: all build vet lint lintdebug test testdebug race stress bench benchscan figs plots examples serve loadtest obssmoke chaossmoke tracesmoke rangesmoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ibrlint: the go/analysis suite enforcing the IBR reservation protocol
# (StartOp/EndOp bracketing, retire-before-free, birth-epoch stamping,
# atomic/plain access discipline, handle lifecycle typestate). See DESIGN.md
# and cmd/ibrlint. The binary is a real file target: it rebuilds only when
# its sources change, so repeated `make lint` runs ride go vet's cache.
LINT_SRCS := go.mod $(shell find cmd/ibrlint internal/analysis vendor/golang.org/x/tools -name '*.go' -not -path '*/testdata/*')

bin/ibrlint: $(LINT_SRCS)
	$(GO) build -o $@ ./cmd/ibrlint

lint: bin/ibrlint
	$(GO) vet -vettool=$(CURDIR)/bin/ibrlint ./...

# The same suite over the ibrdebug build: the debug-only files (pool
# assertions, guard liveness checks) get linted too.
lintdebug: bin/ibrlint
	$(GO) vet -tags ibrdebug -vettool=$(CURDIR)/bin/ibrlint ./...

test:
	$(GO) test ./...

# Full suite with the ibrdebug assertions compiled into mem.Pool.Get:
# use-after-free and stale-epoch dereferences become deterministic panics.
testdebug:
	$(GO) test -tags ibrdebug ./...

race:
	$(GO) test -race ./...

# Correctness soak across every (structure × scheme) pair.
stress:
	$(GO) run ./cmd/ibrstress -all -i 2

# testing.B benchmarks: one family per paper figure + ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Scan-efficiency snapshot: short write-heavy and read-heavy cells, one JSON
# line each in BENCH_scan.json (ops/s + scan stats; see cmd/ibrbench -json).
# The fourth cell repeats the first with the observability hooks live, so the
# recording overhead is priced in the same file it can be diffed from. The
# last two cells are the post-paper engines (hyaline, debra) on the write
# path — the head-to-head EXPERIMENTS.md reads from this file.
benchscan:
	rm -f BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=tagibr -t 4 -m write -i 1 -json BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=tagibr-wcas -t 4 -m write -i 1 -json BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=ebr -t 4 -m write -i 1 -json BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=tagibr -t 4 -m read -i 1 -json BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=tagibr -t 4 -m write -i 1 -obs -json BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=hyaline -t 4 -m write -i 1 -json BENCH_scan.json
	$(GO) run ./cmd/ibrbench -r hashmap -d tracker=debra -t 4 -m write -i 1 -json BENCH_scan.json
	@cat BENCH_scan.json

# Regenerate every figure's data (CSV + ASCII tables + stall curves)…
figs:
	$(GO) run ./cmd/ibrfigs -fig all -i 0.5 -o data

# …and render the SVG charts from it.
plots:
	$(GO) run ./cmd/ibrplot -i data -o data

# Run the KV daemon in the foreground (Ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/ibrd -r hashmap -d tagibr -shards 4 -workers 2

# End-to-end smoke: start ibrd, hammer it with ibrload for 2s, show the
# /debug/vars gauges mid-run, and drain the daemon with SIGTERM.
loadtest:
	$(GO) build -o bin/ibrd ./cmd/ibrd
	$(GO) build -o bin/ibrload ./cmd/ibrload
	@./bin/ibrd -addr 127.0.0.1:4100 -http 127.0.0.1:4101 -r hashmap -d tagibr -shards 4 -workers 2 & \
	pid=$$!; sleep 0.5; \
	( sleep 1; curl -s http://127.0.0.1:4101/debug/vars | tr ',' '\n' | grep -E '"(ops|unreclaimed|max_epoch_lag)"' || true ) & \
	./bin/ibrload -addr 127.0.0.1:4100 -c 8 -p 4 -i 2; rc=$$?; \
	kill -TERM $$pid; wait $$pid; exit $$rc

# Telemetry smoke: boot ibrd with the observability layer on, load it for a
# few seconds, and assert the paper-critical series are present and non-empty
# on /metrics before draining.
obssmoke:
	$(GO) build -o bin/ibrd ./cmd/ibrd
	$(GO) build -o bin/ibrload ./cmd/ibrload
	@./bin/ibrd -addr 127.0.0.1:4200 -http 127.0.0.1:4201 -r hashmap -d tagibr -shards 4 -workers 2 & \
	pid=$$!; sleep 0.5; \
	./bin/ibrload -addr 127.0.0.1:4200 -c 8 -p 4 -i 3 & load=$$!; \
	sleep 2; curl -sf http://127.0.0.1:4201/metrics > /tmp/obssmoke_metrics.txt; \
	curl -sf http://127.0.0.1:4201/debug/flightrecorder | head -1 | grep -q '"kind":"header"'; \
	wait $$load; rc=$$?; kill -TERM $$pid; wait $$pid; \
	grep -q '^ibr_unreclaimed{shard="0"}' /tmp/obssmoke_metrics.txt; \
	grep -q '^ibr_epoch_lag{shard="0"}' /tmp/obssmoke_metrics.txt; \
	grep -q '^ibr_retire_age_bucket{' /tmp/obssmoke_metrics.txt; \
	awk -F' ' '/^ibr_retire_age_count/ { sum += $$2 } END { exit sum > 0 ? 0 : 1 }' /tmp/obssmoke_metrics.txt; \
	echo "obssmoke: key series present and non-empty"; exit $$rc

# Degradation smoke, three legs (see DESIGN.md §7–§8).
# Leg 1: EBR with injected stallers pinning reservations for 3s and a 300ms
# quarantine threshold — assert tids actually get quarantined mid-stall
# (metrics scrape + exit summary) and SIGTERM still drains to 0 blocks
# unreclaimed even though stalls are in flight when it lands.
# Leg 2: the leak scheme on a tiny pool — exhaustion must surface as BUSY
# (typed backpressure the retrying client absorbs; ibrload exits 0), with
# ibr_pool_exhausted_total counting it and no shard panic.
# Leg 3: leg 1 under debra — the quarantine is a real DEBRA+ neutralization
# (reservation cleared, neutralize flag latched, bags adopted) and the
# stalled backlog must still drain to 0 without the staller resuming.
chaossmoke:
	$(GO) build -o bin/ibrd ./cmd/ibrd
	$(GO) build -o bin/ibrload ./cmd/ibrload
	@./bin/ibrd -addr 127.0.0.1:4300 -http 127.0.0.1:4301 -r hashmap -d ebr \
	  -shards 2 -workers 2 -stalled 2 -stallfor 3s \
	  -quarantine-after 300ms -remedy-interval 25ms > /tmp/chaossmoke_ibrd.txt & \
	pid=$$!; sleep 0.5; \
	./bin/ibrload -addr 127.0.0.1:4300 -c 4 -p 4 -i 3 & load=$$!; \
	sleep 2; curl -sf http://127.0.0.1:4301/metrics > /tmp/chaossmoke_metrics.txt; \
	wait $$load; rc=$$?; kill -TERM $$pid; wait $$pid; \
	test $$rc -eq 0 && \
	awk '/^ibr_tid_quarantines_total/ { sum += $$2 } END { exit sum > 0 ? 0 : 1 }' /tmp/chaossmoke_metrics.txt && \
	grep -q 'degradation: .* tid quarantines' /tmp/chaossmoke_ibrd.txt && \
	grep -q ' 0 blocks unreclaimed after final scan' /tmp/chaossmoke_ibrd.txt && \
	echo "chaossmoke leg 1: quarantined mid-stall, drained to 0 with stalls in flight"
	@./bin/ibrd -addr 127.0.0.1:4310 -http 127.0.0.1:4311 -r hashmap -d none \
	  -shards 2 -workers 2 -poolslots 2048 > /tmp/chaossmoke_ibrd2.txt & \
	pid=$$!; sleep 0.5; \
	./bin/ibrload -addr 127.0.0.1:4310 -c 4 -p 4 -i 2 -prefill 0 & load=$$!; \
	sleep 1; curl -sf http://127.0.0.1:4311/metrics > /tmp/chaossmoke_metrics2.txt; \
	wait $$load; rc=$$?; kill -TERM $$pid; wait $$pid; \
	test $$rc -eq 0 && \
	awk '/^ibr_pool_exhausted_total/ { sum += $$2 } END { exit sum > 0 ? 0 : 1 }' /tmp/chaossmoke_metrics2.txt && \
	echo "chaossmoke leg 2: pool exhaustion absorbed as BUSY, load exited clean"
	@./bin/ibrd -addr 127.0.0.1:4320 -http 127.0.0.1:4321 -r hashmap -d debra \
	  -shards 2 -workers 2 -stalled 2 -stallfor 3s \
	  -quarantine-after 300ms -remedy-interval 25ms > /tmp/chaossmoke_ibrd3.txt & \
	pid=$$!; sleep 0.5; \
	./bin/ibrload -addr 127.0.0.1:4320 -c 4 -p 4 -i 3 & load=$$!; \
	sleep 2; curl -sf http://127.0.0.1:4321/metrics > /tmp/chaossmoke_metrics3.txt; \
	wait $$load; rc=$$?; kill -TERM $$pid; wait $$pid; \
	test $$rc -eq 0 && \
	awk '/^ibr_tid_quarantines_total/ { sum += $$2 } END { exit sum > 0 ? 0 : 1 }' /tmp/chaossmoke_metrics3.txt && \
	grep -q 'degradation: .* tid quarantines' /tmp/chaossmoke_ibrd3.txt && \
	grep -q ' 0 blocks unreclaimed after final scan' /tmp/chaossmoke_ibrd3.txt && \
	echo "chaossmoke leg 3: debra staller neutralized mid-stall, backlog drained to 0"

# Causal-tracing smoke (see DESIGN.md §9): boot ibrd with one injected
# staller under traced load, capture /debug/trace with ibrtrace mid-stall,
# and assert (a) the Perfetto JSON parses and holds a complete
# alloc→retire→freed block span plus wire-propagated op spans, and (b)
# ibr_pinned_blocks charges the plurality of pinned blocks to the staller's
# tid. With -workers 2 -stalled 1 the staller deterministically leases tid 2
# (workers take 0..1, injected stallers follow). -quarantine-after 30s keeps
# the remediator from clearing the stalled reservation mid-test, and the
# scrape lands ~4.5s in — inside the staller's SECOND park, when blocks born
# before its reservation epoch exist to be pinned (the first park starts at
# boot, before any block it could conflict with).
tracesmoke:
	$(GO) build -o bin/ibrd ./cmd/ibrd
	$(GO) build -o bin/ibrload ./cmd/ibrload
	$(GO) build -o bin/ibrtrace ./cmd/ibrtrace
	@./bin/ibrd -addr 127.0.0.1:4400 -http 127.0.0.1:4401 -r hashmap -d tagibr \
	  -shards 1 -workers 2 -stalled 1 -stallfor 3s -quarantine-after 30s \
	  -obs-sample 4 -obs-trace 4 -obs-ring 65536 > /tmp/tracesmoke_ibrd.txt & \
	pid=$$!; sleep 0.5; \
	./bin/ibrload -addr 127.0.0.1:4400 -c 4 -p 4 -i 6 > /tmp/tracesmoke_load.txt & load=$$!; \
	sleep 4.5; \
	./bin/ibrtrace -http 127.0.0.1:4401 -o /tmp/tracesmoke_trace.json; \
	curl -sf http://127.0.0.1:4401/metrics > /tmp/tracesmoke_metrics.txt; \
	wait $$load; rc=$$?; kill -TERM $$pid; wait $$pid; \
	test $$rc -eq 0 && \
	python3 scripts/check_trace.py /tmp/tracesmoke_trace.json /tmp/tracesmoke_metrics.txt 2 && \
	grep -q 'trace=0x' /tmp/tracesmoke_load.txt && \
	echo "tracesmoke: complete spans present, blame names the staller tid"

# Range/TTL smoke (see DESIGN.md §10): boot ibrd on the skiplist under an
# interval scheme and drive the mixed range workload with TTL'd writes.
# Asserts: (a) every scan validated client-side — sorted, in-bounds, no
# duplicates; ibrload exits nonzero otherwise — (b) TTL expirations occurred
# and retired through the normal scheme path (retired_expiry > 0 on
# /debug/vars, i.e. the expiry wheel feeds Scheme.Retire, not a side
# channel), (c) retired-but-unreclaimed stayed bounded while scans were in
# flight (the under-scan high-water mark), and (d) the SIGTERM drain still
# reaches 0 blocks unreclaimed with expiry traffic in the mix.
rangesmoke:
	$(GO) build -o bin/ibrd ./cmd/ibrd
	$(GO) build -o bin/ibrload ./cmd/ibrload
	@./bin/ibrd -addr 127.0.0.1:4500 -http 127.0.0.1:4501 -r skiplist -d tagibr \
	  -shards 4 -workers 2 -remedy-interval 25ms > /tmp/rangesmoke_ibrd.txt & \
	pid=$$!; sleep 0.5; \
	./bin/ibrload -addr 127.0.0.1:4500 -c 8 -p 4 -i 3 -m range -span 4096 \
	  -ttl 300ms > /tmp/rangesmoke_load.txt & load=$$!; \
	sleep 2.5; curl -sf http://127.0.0.1:4501/debug/vars > /tmp/rangesmoke_vars.json; \
	wait $$load; rc=$$?; kill -TERM $$pid; wait $$pid; \
	test $$rc -eq 0 && \
	grep -q 'ranges: .* scans validated' /tmp/rangesmoke_load.txt && \
	grep -q ' 0 blocks unreclaimed after final scan' /tmp/rangesmoke_ibrd.txt && \
	python3 scripts/check_rangesmoke.py /tmp/rangesmoke_vars.json 8192 && \
	echo "rangesmoke: scans validated, expiry retires through the scheme, unreclaimed bounded"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pstack
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/stallrobust
	$(GO) run ./examples/kvstore -ms 150

clean:
	rm -f data/*.csv data/*.svg data/*.txt
