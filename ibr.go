// Package ibr is a Go implementation of interval-based memory reclamation
// ("Interval-Based Memory Reclamation", Wen, Izraelevitz, Cai, Beadle &
// Scott, PPoPP 2018), together with the comparison schemes and the lock-free
// data structures the paper evaluates them on.
//
// Because Go is garbage collected, the library ships its own manual-memory
// substrate: nodes live in slab pools with explicit alloc/free and are
// addressed by 64-bit handles, so safe memory reclamation is a real problem
// with observable failure modes (see DESIGN.md). The reclamation schemes —
// NoMM, EBR, hazard pointers, hazard eras, POIBR, TagIBR (CAS/FAA/WCAS/TPA)
// and 2GEIBR — all implement the paper's Fig. 1 API and are interchangeable
// under every structure, subject to the paper's restrictions.
//
// Quick start:
//
//	m, err := ibr.NewMap("hashmap", ibr.Config{Scheme: "tagibr", Threads: 8})
//	if err != nil { ... }
//	m.Insert(tid, key, value) // tid ∈ [0, Threads), one goroutine per tid
//
// See examples/ for complete programs and cmd/ibrfigs for the benchmark
// suite that regenerates the paper's figures.
package ibr

import (
	"fmt"
	"strings"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/harness"
)

// Map is a concurrent key-value structure; see the ds package for the
// contract (one goroutine per thread id, keys below KeyLimit).
type Map = ds.Map

// KV is a key-value pair for Map.Fill.
type KV = ds.KV

// Stack is the Treiber stack (persistent; works with POIBR).
type Stack = ds.Stack

// Queue is the Michael–Scott FIFO queue.
type Queue = ds.Queue

// Concrete Map implementations, exposed so callers can reach the
// structure-specific extras beyond the Map interface: List.Range and
// Bonsai.Range (range scans; Bonsai's runs over one immutable snapshot),
// Bonsai.Validate, SkipList.Validate and SkipList.Sweep.
type (
	// List is the Harris–Michael ordered list.
	List = ds.List
	// HashMap is Michael's lock-free hash map.
	HashMap = ds.HashMap
	// NMTree is the Natarajan–Mittal external BST.
	NMTree = ds.NMTree
	// Bonsai is the persistent weight-balanced tree.
	Bonsai = ds.Bonsai
	// SkipList is the lock-free skip list.
	SkipList = ds.SkipList
)

// Instrumented exposes the reclamation scheme and allocator statistics
// beneath a structure.
type Instrumented = ds.Instrumented

// KeyLimit is the exclusive upper bound on application keys.
const KeyLimit = ds.KeyLimit

// Config selects and tunes a structure/scheme pair.
type Config struct {
	// Scheme is the reclamation scheme: one of Schemes().
	Scheme string
	// Threads is the number of thread ids the structure will serve.
	Threads int
	// EpochFreq is the per-thread allocation count between global epoch
	// advances (default 150, the paper's setting).
	EpochFreq int
	// EmptyFreq is the retirement count between retire-list scans
	// (default 30).
	EmptyFreq int
	// Slots is the number of HP/HE protection slots per thread (default 8).
	Slots int
	// PoolSlots caps the node pool (default 4M slots).
	PoolSlots uint64
	// Buckets is the hash map bucket count (default 16384).
	Buckets int
	// Obs attaches a scheme observer (flight recorder + histograms; see
	// NewSchemeObs). Nil disables observability at the cost of one pointer
	// test per hook.
	Obs *SchemeObs
}

// Validate reports the first configuration error, or nil. The constructors
// call it, so callers only need it to fail fast (e.g. flag parsing) before
// building anything.
func (c Config) Validate() error {
	if c.Scheme != "" && !core.IsScheme(c.Scheme) {
		return fmt.Errorf("ibr: unknown scheme %q; valid: %s", c.Scheme, strings.Join(Schemes(), ", "))
	}
	if c.Threads < 0 {
		return fmt.Errorf("ibr: Threads must be positive, got %d", c.Threads)
	}
	if c.EpochFreq < 0 || c.EmptyFreq < 0 || c.Slots < 0 {
		return fmt.Errorf("ibr: EpochFreq, EmptyFreq and Slots must be non-negative, got %d/%d/%d",
			c.EpochFreq, c.EmptyFreq, c.Slots)
	}
	if c.Buckets < 0 {
		return fmt.Errorf("ibr: Buckets must be non-negative, got %d", c.Buckets)
	}
	return nil
}

func (c Config) dsConfig() ds.Config {
	return ds.Config{
		Scheme: c.Scheme,
		Core: core.Options{
			Threads:   c.Threads,
			EpochFreq: c.EpochFreq,
			EmptyFreq: c.EmptyFreq,
			Slots:     c.Slots,
			Obs:       c.Obs,
		},
		PoolSlots: c.PoolSlots,
		Buckets:   c.Buckets,
	}
}

// NewMap builds a key-value structure: "list" (Harris–Michael ordered
// list), "hashmap" (Michael's hash map), "nmtree" (Natarajan–Mittal BST),
// "bonsai" (persistent weight-balanced tree), or "skiplist" (lock-free
// skip list).
func NewMap(structure string, cfg Config) (Map, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return ds.NewMap(structure, cfg.dsConfig())
}

// NewStack builds a Treiber stack.
func NewStack(cfg Config) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return ds.NewStack(cfg.dsConfig())
}

// NewQueue builds a Michael–Scott queue.
func NewQueue(cfg Config) (*Queue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return ds.NewQueue(cfg.dsConfig())
}

// Drain forces a scan of every thread's retire list. Call it at
// quiescence (no operations in flight) — e.g. at shutdown — to release the
// bounded residue that scans keep while reservations are active.
func Drain(x Instrumented, threads int) { core.DrainAll(x.Scheme(), threads) }

// Schemes lists the reclamation scheme names, in the paper's order:
// none (leak), ebr, hp, he, poibr, tagibr, tagibr-faa, tagibr-wcas,
// tagibr-tpa, 2geibr.
func Schemes() []string { return core.Names() }

// Structures lists the data structure names.
func Structures() []string { return ds.Structures() }

// Supports reports whether a scheme can legally run a structure (POIBR
// needs a persistent structure; HP/HE cannot run the Bonsai tree).
func Supports(scheme, structure string) bool { return ds.SchemeSupports(scheme, structure) }

// BenchConfig configures one microbenchmark cell; see the harness package.
type BenchConfig = harness.Config

// BenchResult is one measured cell.
type BenchResult = harness.Result

// RunBench executes one cell of the paper's fixed-time microbenchmark.
func RunBench(cfg BenchConfig) (BenchResult, error) { return harness.Run(cfg) }
