// Command ibrtop is a terminal dashboard over a running ibrd: it polls the
// daemon's Prometheus /metrics endpoint and renders per-shard serving and
// reclamation state — ops/s (from counter deltas), queue depth,
// retired-but-unreclaimed blocks, epoch and epoch lag — plus engine-wide op
// latency quantiles, retire→free age quantiles, and the stall watchdog's
// alerts.
//
//	ibrtop -addr http://127.0.0.1:4101 -i 1s
//
// It needs nothing beyond the text exposition /metrics already serves, so it
// works against any scrape endpoint emitting the ibr_* families.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:4101", "ibrd HTTP address (the /metrics endpoint's base URL)")
		interval = flag.Duration("i", time.Second, "poll interval")
		count    = flag.Int("n", 0, "frames to render before exiting (0 = until interrupted)")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place (for logs/pipes)")
	)
	flag.Parse()

	url := *addr + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}
	var prev metricSet
	var prevAt time.Time
	for frame := 0; *count == 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		cur, err := scrape(client, url)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibrtop: %v\n", err)
			os.Exit(1)
		}
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		render(os.Stdout, cur, prev, now.Sub(prevAt), frame > 0)
		prev, prevAt = cur, now
	}
}

func scrape(c *http.Client, url string) (metricSet, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return parseMetrics(resp.Body)
}

// render draws one frame. rates require a previous frame (hasPrev).
func render(w io.Writer, cur, prev metricSet, dt time.Duration, hasPrev bool) {
	fmt.Fprintf(w, "ibrtop — %s", time.Now().Format("15:04:05"))
	if info := cur.first("ibr_engine_info"); info != nil {
		fmt.Fprintf(w, "   %s × %s, %s workers/shard",
			info.labels["structure"], info.labels["scheme"], info.labels["workers_per_shard"])
	}
	fmt.Fprintln(w)

	shards := cur.shardIDs("ibr_ops_total")
	fmt.Fprintf(w, "\n%5s %10s %7s %12s %10s %6s %10s\n",
		"shard", "ops/s", "queue", "unreclaimed", "epoch", "lag", "live")
	var totOps, totRate, totQueue, totUnreclaimed float64
	for _, s := range shards {
		sl := map[string]string{"shard": s}
		ops := cur.value("ibr_ops_total", sl)
		rate := 0.0
		if hasPrev && dt > 0 {
			rate = (ops - prev.value("ibr_ops_total", sl)) / dt.Seconds()
		}
		queue := cur.value("ibr_queue_depth", sl)
		unrec := cur.value("ibr_unreclaimed", sl)
		totOps, totRate, totQueue, totUnreclaimed = totOps+ops, totRate+rate, totQueue+queue, totUnreclaimed+unrec
		fmt.Fprintf(w, "%5s %10.0f %7.0f %12.0f %10.0f %6.0f %10.0f\n",
			s, rate, queue, unrec,
			cur.value("ibr_epoch", sl), cur.value("ibr_epoch_lag", sl),
			cur.value("ibr_live_blocks", sl))
	}
	fmt.Fprintf(w, "%5s %10.0f %7.0f %12.0f   (%.0f ops total)\n", "Σ", totRate, totQueue, totUnreclaimed, totOps)

	if cur.has("ibr_op_latency_ns_bucket") {
		fmt.Fprintf(w, "\n%-18s %10s %10s %10s %12s\n", "latency", "p50", "p99", "count", "")
		for _, op := range []string{"get", "put", "del"} {
			h := cur.histogram("ibr_op_latency_ns", map[string]string{"op": op})
			fmt.Fprintf(w, "%-18s %10s %10s %10.0f\n", op,
				fmtNanos(h.quantile(0.50)), fmtNanos(h.quantile(0.99)), h.count)
		}
		age := cur.histogram("ibr_retire_age", nil) // merged over shards
		fmt.Fprintf(w, "%-18s %10.0f %10.0f %10.0f   (epochs)\n", "retire→free age",
			age.quantile(0.50), age.quantile(0.99), age.count)
		scan := cur.histogram("ibr_scan_duration_ns", nil)
		fmt.Fprintf(w, "%-18s %10s %10s %10.0f\n", "scan duration",
			fmtNanos(scan.quantile(0.50)), fmtNanos(scan.quantile(0.99)), scan.count)
	}

	if cur.has("ibr_stall_alerts_total") {
		fmt.Fprintf(w, "\nwatchdog: %.0f alerts, %.0f stalled now, max epoch lag %.0f\n",
			cur.value("ibr_stall_alerts_total", nil),
			cur.value("ibr_stalled_reservations", nil),
			cur.value("ibr_max_epoch_lag", nil))
	}
	if cur.has("ibr_flight_events_total") {
		fmt.Fprintf(w, "flight recorder: %.0f events, %.0f overwritten\n",
			cur.value("ibr_flight_events_total", nil),
			cur.value("ibr_flight_dropped_total", nil))
	}
}

func fmtNanos(ns float64) string {
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// sample is one parsed exposition line: name{labels} value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// metricSet indexes samples by metric name.
type metricSet map[string][]sample

func (m metricSet) has(name string) bool { return len(m[name]) > 0 }

func (m metricSet) first(name string) *sample {
	if ss := m[name]; len(ss) > 0 {
		return &ss[0]
	}
	return nil
}

// value returns the first sample of name whose labels include sel (nil
// matches anything), 0 when absent.
func (m metricSet) value(name string, sel map[string]string) float64 {
	for i := range m[name] {
		if m[name][i].match(sel) {
			return m[name][i].value
		}
	}
	return 0
}

func (s *sample) match(sel map[string]string) bool {
	for k, v := range sel {
		if s.labels[k] != v {
			return false
		}
	}
	return true
}

// shardIDs lists the distinct numeric `shard` label values of name, sorted.
func (m metricSet) shardIDs(name string) []string {
	seen := map[string]bool{}
	for i := range m[name] {
		if s, ok := m[name][i].labels["shard"]; ok && !seen[s] {
			seen[s] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(out[i])
		b, _ := strconv.Atoi(out[j])
		return a < b
	})
	return out
}

// hist is a cumulative-bucket view rebuilt from <name>_bucket samples.
type hist struct {
	bounds []float64 // ascending le values, +Inf last
	cums   []float64
	count  float64
}

// histogram merges every <name>_bucket member matching sel into one
// cumulative histogram (members with identical le are summed — that is how
// the per-shard retire-age family aggregates into an engine view).
func (m metricSet) histogram(name string, sel map[string]string) hist {
	byLe := map[float64]float64{}
	for i := range m[name+"_bucket"] {
		s := &m[name+"_bucket"][i]
		if !s.match(sel) {
			continue
		}
		le, err := parseLe(s.labels["le"])
		if err != nil {
			continue
		}
		byLe[le] += s.value
	}
	h := hist{}
	for le := range byLe {
		h.bounds = append(h.bounds, le)
	}
	sort.Float64s(h.bounds)
	for _, le := range h.bounds {
		h.cums = append(h.cums, byLe[le])
	}
	if n := len(h.cums); n > 0 {
		h.count = h.cums[n-1] // the +Inf bucket
	}
	return h
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// quantile interpolates inside the bucket containing rank q·count, matching
// the exporter's log2 bucket layout (lower bound = previous le, 0 for the
// first bucket).
func (h hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * h.count
	lo := 0.0
	for i, cum := range h.cums {
		if cum >= target {
			hi := h.bounds[i]
			if math.IsInf(hi, 1) { // +Inf bucket: clamp to the last finite bound
				if i == 0 {
					return 0
				}
				return h.bounds[i-1]
			}
			var below float64
			if i > 0 {
				below = h.cums[i-1]
				lo = h.bounds[i-1]
			}
			inBucket := cum - below
			if inBucket <= 0 {
				return hi
			}
			frac := (target - below) / inBucket
			return lo + frac*(hi-lo)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// parseMetrics reads the Prometheus text exposition format: comment lines
// are skipped, every other line is name[{labels}] value. Label values may
// contain escaped quotes, backslashes, and newlines.
func parseMetrics(r io.Reader) (metricSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := metricSet{}
	for ln, line := range splitLines(string(data)) {
		if line == "" || line[0] == '#' {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out[s.name] = append(out[s.name], s)
	}
	return out, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	if i == 0 || i == len(line) {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.name = line[:i]
	if line[i] == '{' {
		i++
		for i < len(line) && line[i] != '}' {
			ks := i
			for i < len(line) && line[i] != '=' {
				i++
			}
			if i >= len(line) || i+1 >= len(line) || line[i+1] != '"' {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			key := line[ks:i]
			i += 2 // past ="
			var val []byte
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' && i+1 < len(line) {
					i++
					switch line[i] {
					case 'n':
						val = append(val, '\n')
					case '\\', '"':
						val = append(val, line[i])
					default:
						// The text format defines exactly three escapes
						// (\n, \\, \"); anything else is a literal
						// backslash followed by that byte. Dropping the
						// backslash here used to corrupt such values.
						val = append(val, '\\', line[i])
					}
				} else {
					val = append(val, line[i])
				}
				i++
			}
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			i++ // closing quote
			s.labels[key] = string(val)
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
		if i >= len(line) || line[i] != '}' {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		i++
	}
	for i < len(line) && line[i] == ' ' {
		i++
	}
	// The value token ends at the next space: the format allows an optional
	// trailing millisecond timestamp ("name 1 1712345678901"), which this
	// reader ignores rather than choking on.
	j := i
	for j < len(line) && line[j] != ' ' {
		j++
	}
	v, err := strconv.ParseFloat(line[i:j], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.value = v
	return s, nil
}
