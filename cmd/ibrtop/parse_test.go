package main

import (
	"strings"
	"testing"
)

func TestParseMetrics(t *testing.T) {
	in := `# HELP ibr_ops_total Operations completed per shard.
# TYPE ibr_ops_total counter
ibr_ops_total{shard="0"} 120
ibr_ops_total{shard="1"} 80
ibr_queue_depth 3
ibr_engine_info{structure="hashmap",scheme="tagibr",workers_per_shard="2"} 1
weird_label{v="a\"b\\c\nd"} 1.5
ibr_op_latency_ns_bucket{op="get",le="1024"} 10
ibr_op_latency_ns_bucket{op="get",le="2048"} 30
ibr_op_latency_ns_bucket{op="get",le="+Inf"} 40
`
	m, err := parseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.value("ibr_ops_total", map[string]string{"shard": "1"}); got != 80 {
		t.Errorf("shard 1 ops = %v", got)
	}
	if got := m.value("ibr_queue_depth", nil); got != 3 {
		t.Errorf("unlabeled value = %v", got)
	}
	if ids := m.shardIDs("ibr_ops_total"); len(ids) != 2 || ids[0] != "0" || ids[1] != "1" {
		t.Errorf("shardIDs = %v", ids)
	}
	if got := m.first("weird_label").labels["v"]; got != "a\"b\\c\nd" {
		t.Errorf("unescaped label = %q", got)
	}

	h := m.histogram("ibr_op_latency_ns", map[string]string{"op": "get"})
	if h.count != 40 {
		t.Fatalf("hist count = %v", h.count)
	}
	// Median rank 20 falls in the (1024,2048] bucket holding ranks 11..30:
	// 1024 + (20-10)/20 · 1024 = 1536.
	if got := h.quantile(0.5); got != 1536 {
		t.Errorf("p50 = %v, want 1536", got)
	}
	// p99 rank 39.6 lands in the +Inf bucket → clamp to the last bound.
	if got := h.quantile(0.99); got != 2048 {
		t.Errorf("p99 = %v, want 2048 (clamped)", got)
	}
}

// TestParseSampleLabelEscaping pins the text-format corner cases down:
// spaces inside label values, escaped quotes and backslashes, unknown
// escape pairs (which must keep their backslash, not drop it), and the
// optional trailing timestamp the exposition format permits.
func TestParseSampleLabelEscaping(t *testing.T) {
	for _, tc := range []struct {
		line, label, want string
		value             float64
	}{
		{`m{v="hello world"} 1`, "v", "hello world", 1},
		{`m{v="two  spaces and } brace"} 2`, "v", "two  spaces and } brace", 2},
		{`m{v="say \"hi\""} 3`, "v", `say "hi"`, 3},
		{`m{v="C:\\temp"} 4`, "v", `C:\temp`, 4},
		// \q is not one of the format's three escapes; the backslash
		// stays.
		{`m{v="odd\qpair"} 5`, "v", `odd\qpair`, 5},
		{`m{v="x"} 6 1712345678901`, "v", "x", 6},
		{`m 7 1712345678901`, "", "", 7},
	} {
		s, err := parseSample(tc.line)
		if err != nil {
			t.Errorf("parseSample(%q): %v", tc.line, err)
			continue
		}
		if tc.label != "" {
			if got := s.labels[tc.label]; got != tc.want {
				t.Errorf("parseSample(%q) label %s = %q, want %q", tc.line, tc.label, got, tc.want)
			}
		}
		if s.value != tc.value {
			t.Errorf("parseSample(%q) value = %v, want %v", tc.line, s.value, tc.value)
		}
	}
}

func TestParseMetricsMalformed(t *testing.T) {
	for _, in := range []string{
		"no_value\n",
		"bad{unterminated=\"x\n",
		"bad{le=\"1\"} not-a-number\n",
	} {
		if _, err := parseMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("parse(%q) succeeded; want error", in)
		}
	}
}
