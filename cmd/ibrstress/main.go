// Command ibrstress is a correctness hammer: it drives a (structure ×
// scheme) pair with concurrent workers under freed-node poisoning, checks
// every operation against per-thread models on disjoint key ranges, and
// finishes with structural validation and exact leak accounting. It exits
// non-zero on the first violation — use it to soak-test a scheme for
// minutes or hours:
//
//	ibrstress -r nmtree -d tagibr -t 8 -i 30
//	ibrstress -all -i 2          # every supported pair, 2s each
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
)

func main() {
	var (
		structure = flag.String("r", "hashmap", "structure under test")
		scheme    = flag.String("d", "tagibr", "reclamation scheme")
		threads   = flag.Int("t", 4, "worker threads")
		seconds   = flag.Float64("i", 5, "seconds per pair")
		keysEach  = flag.Uint64("keys", 128, "keys per worker (disjoint ranges)")
		shared    = flag.Uint64("shared", 16, "extra fully-shared hot keys")
		all       = flag.Bool("all", false, "run every supported (structure, scheme) pair")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "rng seed")
	)
	flag.Parse()

	if !*all {
		if !ds.IsMapStructure(*structure) {
			fmt.Fprintf(os.Stderr, "ibrstress: unknown structure %q; valid: %s\n",
				*structure, strings.Join(ds.MapStructures(), ", "))
			os.Exit(2)
		}
		if !core.IsScheme(*scheme) {
			fmt.Fprintf(os.Stderr, "ibrstress: unknown scheme %q; valid: %s\n",
				*scheme, strings.Join(core.Schemes(), ", "))
			os.Exit(2)
		}
	}

	// Print the effective seed up front (it defaults to the clock) so any
	// failure — including in the -all path — is reproducible with -seed.
	fmt.Printf("seed %d\n", *seed)

	pairs := [][2]string{{*structure, *scheme}}
	if *all {
		pairs = nil
		for _, st := range ds.MapStructures() {
			for _, sc := range core.Names() {
				if ds.SchemeSupports(sc, st) {
					pairs = append(pairs, [2]string{st, sc})
				}
			}
		}
	}

	failed := 0
	for _, p := range pairs {
		if err := stress(p[0], p[1], *threads, *seconds, *keysEach, *shared, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %-9s %-12s %v\n", p[0], p[1], err)
			failed++
		} else {
			fmt.Printf("ok   %-9s %-12s\n", p[0], p[1])
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d pair(s) failed\n", failed)
		os.Exit(1)
	}
}

func stress(structure, scheme string, threads int, seconds float64, keysEach, shared uint64, seed int64) error {
	m, err := ds.NewMap(structure, ds.Config{
		Scheme:    scheme,
		Core:      core.Options{Threads: threads, EpochFreq: 32, EmptyFreq: 16},
		PoolSlots: 1 << 21,
		Buckets:   1 << 10,
		Poison:    true,
	})
	if err != nil {
		return err
	}

	var (
		stop      atomic.Bool
		exhausted atomic.Bool
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			stop.Store(true)
		}
		mu.Unlock()
	}
	inst := m.(ds.Instrumented)
	// outOfMemory distinguishes a failed insert caused by pool exhaustion
	// (inevitable for the leaking NoMM baseline in a long soak; possible
	// for any scheme if reservations pin everything) from a model
	// violation: if the pool is essentially full, stop the run cleanly.
	outOfMemory := func() bool {
		st := inst.PoolStats()
		// Per-thread free caches can strand up to ~129 slots each.
		if st.Live()+uint64(threads)*140 >= st.Capacity {
			exhausted.Store(true)
			stop.Store(true)
			return true
		}
		return false
	}
	models := make([]map[uint64]uint64, threads)

	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			model := map[uint64]uint64{}
			models[tid] = model
			base := uint64(tid+1) * 1_000_000
			rng := rand.New(rand.NewSource(seed + int64(tid)))
			for !stop.Load() {
				if rng.Intn(8) == 0 && shared > 0 {
					// Contention traffic on the shared hot range: results
					// are nondeterministic, but values must never be
					// corrupted (poison = ^uint64(0) - k pattern below).
					k := uint64(rng.Intn(int(shared)))
					switch rng.Intn(3) {
					case 0:
						m.Insert(tid, k, k*2+1)
					case 1:
						m.Remove(tid, k)
					default:
						if v, ok := m.Get(tid, k); ok && v != k*2+1 {
							report(fmt.Errorf("shared key %d corrupted: value %d", k, v))
							return
						}
					}
					continue
				}
				key := base + uint64(rng.Intn(int(keysEach)))
				switch rng.Intn(4) {
				case 0, 1:
					val := rng.Uint64() >> 1
					_, in := model[key]
					if m.Insert(tid, key, val) == in {
						if !in && outOfMemory() {
							return // allocator exhausted: clean early stop
						}
						report(fmt.Errorf("tid %d: Insert(%d) inconsistent with model", tid, key))
						return
					}
					if !in {
						model[key] = val
					}
				case 2:
					_, in := model[key]
					if got := m.Remove(tid, key); got != in {
						if in && !got && outOfMemory() {
							return // e.g. Bonsai's path copy hit the cap
						}
						report(fmt.Errorf("tid %d: Remove(%d) inconsistent with model", tid, key))
						return
					}
					delete(model, key)
				default:
					want, in := model[key]
					got, ok := m.Get(tid, key)
					if ok != in || (ok && got != want) {
						report(fmt.Errorf("tid %d: Get(%d) = (%d,%v), model (%d,%v)", tid, key, got, ok, want, in))
						return
					}
				}
			}
		}(tid)
	}
	time.Sleep(time.Duration(seconds * float64(time.Second)))
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Quiescent validation: models vs content, structure invariants, leaks.
	if sl, ok := m.(*ds.SkipList); ok {
		sl.Sweep(0)
	}
	core.DrainAll(inst.Scheme(), threads)

	keys := m.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("Keys() not strictly sorted at %d", keys[i])
		}
	}
	present := map[uint64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	for tid, model := range models {
		for k, v := range model {
			if !present[k] {
				return fmt.Errorf("tid %d: key %d lost", tid, k)
			}
			if got, ok := m.Get(0, k); !ok || got != v {
				return fmt.Errorf("tid %d: key %d value %d, want %d", tid, k, got, v)
			}
		}
	}
	if exhausted.Load() {
		fmt.Printf("note %-9s %-12s pool exhausted; stopped early (leak check skipped)\n", structure, scheme)
	}
	if scheme != "none" && !exhausted.Load() {
		st := inst.PoolStats()
		var want uint64
		switch structure {
		case "nmtree":
			want = uint64(2*(len(keys)+3) - 1)
		default:
			want = uint64(len(keys))
		}
		if st.Live() != want {
			return fmt.Errorf("leak: %d live slots, want %d (allocs %d frees %d)",
				st.Live(), want, st.Allocs, st.Frees)
		}
	}
	if b, ok := m.(*ds.Bonsai); ok {
		if err := b.Validate(); err != nil {
			return err
		}
	}
	if sl, ok := m.(*ds.SkipList); ok {
		if err := sl.Validate(); err != nil {
			return err
		}
	}
	return nil
}
