// Command ibrd is the network front end over the IBR data structures: a
// sharded key-value daemon speaking the length-prefixed binary protocol of
// internal/server. Each shard is an independent (structure × scheme) pair
// served by a pool of tid-leased workers, so an unbounded population of
// connection goroutines can drive reclamation schemes that require a small
// fixed thread-id space.
//
//	ibrd -addr :4100 -http :4101 -r hashmap -d tagibr -shards 8 -workers 2
//
// SIGINT/SIGTERM drain gracefully: in-flight requests complete, responses
// flush, retire lists are scanned at quiescence, then the process exits.
// Metrics (per-shard throughput, queue depth, retired-but-unreclaimed,
// epoch lag, reclamation-scan work) are exported as JSON under "ibrd" on
// http://<http>/debug/vars; the connection front end's counters (accepted,
// dropped connections, rejected frames) under "ibrd_server".
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":4100", "TCP listen address for the KV protocol")
		httpAddr  = flag.String("http", ":4101", "HTTP listen address for /debug/vars (empty disables)")
		structure = flag.String("r", "hashmap", "rideable: "+strings.Join(ds.MapStructures(), ", "))
		scheme    = flag.String("d", "tagibr", "reclamation scheme: "+strings.Join(core.Schemes(), ", "))
		shards    = flag.Int("shards", 8, "independent structure instances the key space is hashed across")
		workers   = flag.Int("workers", 2, "tid-leased worker goroutines per shard")
		queue     = flag.Int("queue", 4096, "per-shard request queue depth (beyond it clients see BUSY)")
		inflight  = flag.Int("inflight", 128, "max pipelined requests per connection")
		idle      = flag.Duration("idle", 5*time.Minute, "per-connection idle timeout")
		epochf    = flag.Int("epochf", 150, "epoch advance frequency (per-worker allocations)")
		emptyf    = flag.Int("emptyf", 30, "retire-list scan frequency (retirements)")
		buckets   = flag.Int("buckets", 0, "hash map buckets per shard (0 = default)")
		poolSlots = flag.Uint64("poolslots", 0, "node pool capacity per shard (0 = default)")
	)
	flag.Parse()

	if !ds.IsMapStructure(*structure) {
		fmt.Fprintf(os.Stderr, "ibrd: unknown structure %q; valid: %s\n",
			*structure, strings.Join(ds.MapStructures(), ", "))
		os.Exit(2)
	}
	if !core.IsScheme(*scheme) {
		fmt.Fprintf(os.Stderr, "ibrd: unknown scheme %q; valid: %s\n",
			*scheme, strings.Join(core.Schemes(), ", "))
		os.Exit(2)
	}
	if !ds.SchemeSupports(*scheme, *structure) {
		fmt.Fprintf(os.Stderr, "ibrd: scheme %q cannot run structure %q\n", *scheme, *structure)
		os.Exit(2)
	}

	eng, err := server.NewEngine(server.EngineConfig{
		Structure: *structure, Scheme: *scheme,
		Shards: *shards, WorkersPerShard: *workers, QueueDepth: *queue,
		EpochFreq: *epochf, EmptyFreq: *emptyf,
		Buckets: *buckets, PoolSlots: *poolSlots,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibrd:", err)
		os.Exit(1)
	}
	server.PublishVars("ibrd", eng)
	srv := server.NewServer(eng, server.ServerConfig{MaxInflight: *inflight, IdleTimeout: *idle})
	server.PublishServerVars("ibrd_server", srv)

	if *httpAddr != "" {
		// Importing expvar (via internal/server) registers /debug/vars on
		// the default mux; serving it is all that is left to do.
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ibrd: debug http:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() {
		fmt.Printf("ibrd: serving %s × %s, %d shards × %d workers on %s (metrics on %s)\n",
			*structure, *scheme, *shards, *workers, *addr, *httpAddr)
		serveErr <- srv.ListenAndServe(*addr)
	}()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibrd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("ibrd: %v — draining\n", s)
		srv.Shutdown()
	}

	var ops uint64
	var unreclaimed int
	for _, st := range eng.Stats() {
		ops += st.Ops
		unreclaimed += st.Unreclaimed
	}
	fmt.Printf("ibrd: drained: %d ops served over %d connections, %d blocks unreclaimed after final scan\n",
		ops, srv.Accepted(), unreclaimed)
}
