// Command ibrd is the network front end over the IBR data structures: a
// sharded key-value daemon speaking the length-prefixed binary protocol of
// internal/server. Each shard is an independent (structure × scheme) pair
// served by a pool of tid-leased workers, so an unbounded population of
// connection goroutines can drive reclamation schemes that require a small
// fixed thread-id space.
//
//	ibrd -addr :4100 -http :4101 -r hashmap -d tagibr -shards 8 -workers 2
//
// SIGINT/SIGTERM drain gracefully: in-flight requests complete, responses
// flush, retire lists are scanned at quiescence, a final metrics snapshot is
// written to stderr, then the process exits. SIGQUIT dumps the flight
// recorder as JSONL to stderr without pausing or stopping the daemon.
//
// The HTTP side serves /debug/vars (JSON gauges under "ibrd"/"ibrd_server"),
// /metrics (Prometheus text format: per-shard throughput, queue depth,
// retired-but-unreclaimed, epoch lag, retire→free age histograms, op
// latency, stall-watchdog alerts, scan-phase breakdown, pinned-memory
// blame), /debug/flightrecorder (SMR lifecycle event dump), /debug/trace
// (the same events as a Perfetto/chrome://tracing JSON timeline), and
// net/http/pprof under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/obs"
	"ibr/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":4100", "TCP listen address for the KV protocol")
		httpAddr  = flag.String("http", ":4101", "HTTP listen address for /debug/vars, /metrics, /debug/flightrecorder, /debug/pprof (empty disables)")
		structure = flag.String("r", "hashmap", "rideable: "+strings.Join(ds.MapStructures(), ", "))
		scheme    = flag.String("d", "tagibr", "reclamation scheme: "+strings.Join(core.Schemes(), ", "))
		shards    = flag.Int("shards", 8, "independent structure instances the key space is hashed across")
		workers   = flag.Int("workers", 2, "tid-leased worker goroutines per shard")
		queue     = flag.Int("queue", 4096, "per-shard request queue depth (beyond it clients see BUSY)")
		inflight  = flag.Int("inflight", 128, "max pipelined requests per connection")
		idle      = flag.Duration("idle", 5*time.Minute, "per-connection idle timeout")
		epochf    = flag.Int("epochf", 150, "epoch advance frequency (per-worker allocations)")
		emptyf    = flag.Int("emptyf", 30, "retire-list scan frequency (retirements)")
		buckets   = flag.Int("buckets", 0, "hash map buckets per shard (0 = default)")
		poolSlots = flag.Uint64("poolslots", 0, "node pool capacity per shard (0 = default)")

		obsOn       = flag.Bool("obs", true, "enable the observability layer (flight recorder, histograms, stall watchdog)")
		obsRing     = flag.Int("obs-ring", 4096, "flight-recorder events kept per worker ring")
		obsSample   = flag.Int("obs-sample", 64, "record every Nth alloc/retire event (1 = all)")
		obsTrace    = flag.Int("obs-trace", 64, "trace block lifecycles for every Nth pool slot (rounded to a power of two; 1 = all)")
		stallThresh = flag.Duration("stall-threshold", time.Second, "reservation age past which the watchdog raises a stall alert")
		stalled     = flag.Int("stalled", 0, "injected stalled reservation holders per shard (the paper's preempted thread; for watching reclamation lag)")
		stallFor    = flag.Duration("stallfor", 2*time.Second, "how long each injected stall pins its reservation")

		maxRange   = flag.Int("max-range", 0, "result cap per RANGE scan (0 = protocol maximum, 65536)")
		expiryGran = flag.Duration("expiry-gran", 50*time.Millisecond, "TTL expiry wheel slot width (expirations lag it by up to one remediation tick)")

		softWater  = flag.Float64("soft-watermark", 0.5, "unreclaimed fraction of pool capacity that triggers forced scans")
		hardWater  = flag.Float64("hard-watermark", 0.85, "unreclaimed fraction of pool capacity above which the shard sheds (BUSY)")
		quarAfter  = flag.Duration("quarantine-after", time.Second, "how long a parked lease holder's reservation may sit before its tid is quarantined")
		remedyIntv = flag.Duration("remedy-interval", 50*time.Millisecond, "remediation loop poll period (watermarks + quarantine)")
		spares     = flag.Int("spares", 2, "spare scheme tids per shard for replacement workers after a quarantine")
	)
	flag.Parse()

	if !ds.IsMapStructure(*structure) {
		fmt.Fprintf(os.Stderr, "ibrd: unknown structure %q; valid: %s\n",
			*structure, strings.Join(ds.MapStructures(), ", "))
		os.Exit(2)
	}
	if !core.IsScheme(*scheme) {
		fmt.Fprintf(os.Stderr, "ibrd: unknown scheme %q; valid: %s\n",
			*scheme, strings.Join(core.Schemes(), ", "))
		os.Exit(2)
	}
	if !ds.SchemeSupports(*scheme, *structure) {
		fmt.Fprintf(os.Stderr, "ibrd: scheme %q cannot run structure %q\n", *scheme, *structure)
		os.Exit(2)
	}
	if *softWater <= 0 || *softWater >= *hardWater || *hardWater > 1 {
		fmt.Fprintf(os.Stderr, "ibrd: watermarks must satisfy 0 < soft < hard <= 1, got soft=%v hard=%v\n",
			*softWater, *hardWater)
		os.Exit(2)
	}
	if *spares < 1 {
		fmt.Fprintf(os.Stderr, "ibrd: -spares must be at least 1 (replacement workers draw from them), got %d\n", *spares)
		os.Exit(2)
	}

	cfg := server.EngineConfig{
		Structure: *structure, Scheme: *scheme,
		Shards: *shards, WorkersPerShard: *workers, QueueDepth: *queue,
		EpochFreq: *epochf, EmptyFreq: *emptyf,
		Buckets: *buckets, PoolSlots: *poolSlots,
		Stalled: *stalled, StallFor: *stallFor,
		SoftWatermark: *softWater, HardWatermark: *hardWater,
		QuarantineAfter: *quarAfter, RemedyInterval: *remedyIntv,
		SpareTids:       *spares,
		MaxRangeResults: *maxRange, ExpiryGranularity: *expiryGran,
	}
	if *obsOn {
		cfg.Obs = &obs.Options{
			RingSize:       *obsRing,
			SampleEvery:    *obsSample,
			TraceEvery:     *obsTrace,
			StallThreshold: *stallThresh,
		}
	}
	eng, err := server.NewEngine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibrd:", err)
		os.Exit(1)
	}
	server.PublishVars("ibrd", eng)
	srv := server.NewServer(eng, server.ServerConfig{MaxInflight: *inflight, IdleTimeout: *idle})
	server.PublishServerVars("ibrd_server", srv)

	if *httpAddr != "" {
		// Importing expvar (via internal/server) and net/http/pprof registers
		// /debug/vars and /debug/pprof on the default mux; /metrics and the
		// flight-recorder dump ride alongside.
		http.Handle("/metrics", server.MetricsHandler(eng, srv))
		http.Handle("/debug/flightrecorder", server.FlightRecorderHandler(eng))
		http.Handle("/debug/trace", server.TraceHandler(eng))
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ibrd: debug http:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// SIGQUIT: dump the flight recorder to stderr and keep serving. The
	// snapshot reads the rings without synchronizing with the workers, so a
	// dump under full load is safe (torn slots are skipped, not blocked on).
	if rec := eng.Obs().Recorder(); rec != nil {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				fmt.Fprintln(os.Stderr, "ibrd: SIGQUIT — flight recorder dump")
				if err := rec.WriteJSONL(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "ibrd: flight dump:", err)
				}
				eng.WriteCausalSummary(os.Stderr)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() {
		fmt.Printf("ibrd: serving %s × %s, %d shards × %d workers on %s (metrics on %s)\n",
			*structure, *scheme, *shards, *workers, *addr, *httpAddr)
		serveErr <- srv.ListenAndServe(*addr)
	}()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibrd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("ibrd: %v — draining\n", s)
		srv.Shutdown()
	}

	var ops, quarantines, shed, deaths, ranges, expired uint64
	var unreclaimed int
	for _, st := range eng.Stats() {
		ops += st.Ops
		unreclaimed += st.Unreclaimed
		quarantines += st.Quarantines
		shed += st.Shed
		deaths += st.Deaths
		ranges += st.RangeOps
		expired += st.Expired
	}
	fmt.Printf("ibrd: drained: %d ops served over %d connections, %d blocks unreclaimed after final scan\n",
		ops, srv.Accepted(), unreclaimed)
	if ranges+expired > 0 {
		fmt.Printf("ibrd: ranges: %d shard legs scanned; expiry: %d keys lapsed\n", ranges, expired)
	}
	if quarantines+shed+deaths > 0 {
		fmt.Printf("ibrd: degradation: %d tid quarantines, %d submits shed, %d worker deaths\n",
			quarantines, shed, deaths)
	}
	// Final telemetry snapshot for post-mortems: the causal summary (scan
	// phases, pinned-memory blame) and the same exposition /metrics served,
	// frozen at quiescence.
	eng.WriteCausalSummary(os.Stderr)
	fmt.Fprintln(os.Stderr, "ibrd: final metrics snapshot:")
	if err := eng.WriteMetrics(os.Stderr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "ibrd: metrics snapshot:", err)
	}
}
