// Command ibrtrace captures or converts causal reclamation traces into the
// Perfetto / chrome://tracing JSON format (load the output at
// https://ui.perfetto.dev or chrome://tracing).
//
// Two modes, exactly one required:
//
//	ibrtrace -http 127.0.0.1:4101 -o trace.json
//	    capture: fetch /debug/trace from a running ibrd's debug HTTP
//	    listener. The daemon does the encoding; this mode is a convenience
//	    wrapper so recipes need no curl incantation.
//
//	ibrtrace -jsonl flight.jsonl -o trace.json
//	    convert: re-encode a flight-recorder JSONL dump (saved earlier from
//	    /debug/flightrecorder or a SIGQUIT stderr capture) offline. The
//	    header line and any unknown kinds are skipped, so a raw SIGQUIT
//	    capture with surrounding log lines still converts.
//
// -o defaults to stdout ("-").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ibr/internal/obs"
)

// jsonlEvent mirrors the flight recorder's JSONL line shape (obs.jsonEvent):
// an obs.Event plus the kind rendered as a string.
type jsonlEvent struct {
	Ring  int    `json:"ring"`
	Pos   uint64 `json:"pos"`
	TS    uint64 `json:"ts_ns"`
	Kind  string `json:"kind"`
	Tid   int    `json:"tid"`
	Epoch uint64 `json:"epoch"`
	Value uint64 `json:"value"`
}

func main() {
	var (
		httpAddr = flag.String("http", "", "capture: ibrd debug HTTP address (host:port or URL) to fetch /debug/trace from")
		jsonl    = flag.String("jsonl", "", "convert: flight-recorder JSONL dump file to re-encode ('-' for stdin)")
		out      = flag.String("o", "-", "output file for the Perfetto JSON ('-' for stdout)")
		timeout  = flag.Duration("timeout", 10*time.Second, "HTTP capture timeout")
	)
	flag.Parse()

	if (*httpAddr == "") == (*jsonl == "") {
		fmt.Fprintln(os.Stderr, "ibrtrace: exactly one of -http or -jsonl is required")
		flag.Usage()
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	var err error
	if *httpAddr != "" {
		err = capture(w, *httpAddr, *timeout)
	} else {
		err = convert(w, *jsonl)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ibrtrace:", err)
	os.Exit(1)
}

// capture streams /debug/trace from a running daemon. addr may be a bare
// host:port (http:// and the path are filled in) or a full URL.
func capture(w io.Writer, addr string, timeout time.Duration) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/debug/trace"
	}
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// convert re-encodes a flight-recorder JSONL dump as a Perfetto trace.
// Non-JSON lines (log noise around a SIGQUIT capture), the header object,
// and unknown kinds are skipped rather than fatal.
func convert(w io.Writer, path string) error {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var events []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] != '{' {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			continue
		}
		kind := obs.KindFromString(je.Kind)
		if kind == 0 {
			continue // header line or a kind this build does not know
		}
		events = append(events, obs.Event{
			Ring: je.Ring, Pos: je.Pos, TS: je.TS,
			Kind: kind, Tid: je.Tid, Epoch: je.Epoch, Value: je.Value,
		})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no flight-recorder events found", path)
	}
	return obs.WriteTrace(w, events)
}
