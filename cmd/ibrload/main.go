// Command ibrload drives an ibrd server from many pipelined connections
// and reports throughput and latency quantiles; it doubles as the serving
// layer's end-to-end smoke test (any protocol error exits non-zero).
//
//	ibrload -addr 127.0.0.1:4100 -c 8 -p 4 -i 2
//
// opens 8 connections with 4 closed-loop issuers each (pipeline depth 4
// per connection, 32 outstanding requests overall) for 2 seconds and
// prints Mops/s plus separate read (GET), write (PUT/DEL), range (RANGE)
// and rmw p50/p95/p99 lines from the merged per-issuer histograms.
//
// Workload modes:
//
//	write — 50/50 PUT/DEL over uniform keys (the default)
//	read  — 90% GET, 5% PUT, 5% DEL over uniform keys
//	zipf  — the read mix over a Zipfian key distribution (-zipf-s), the
//	        hot-key shape: a handful of keys absorb most operations
//	rmw   — read-modify-write: GET, then DEL+PUT of value+1, measured as
//	        one composite operation
//	range — 1-in-8 RANGE scans of -span keys (each executed inside one
//	        reservation interval per shard: the paper's long-running
//	        read), the rest 50/50 PUT/DEL — long scans vs writers
//
// -ttl arms every PUT with a server-side expiry, so TTL-driven
// retirements compete with the workload's deletes.
//
// Every measured request carries a unique causal trace ID on the wire
// (issuer slot in the high half, per-issuer sequence in the low), and the
// exit summary names the slowest request of each one-second window by its
// trace ID — paste it into the /debug/trace timeline (or an ibrtrace
// capture) to see what the server's reclamation machinery was doing while
// that request executed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/harness"
	"ibr/internal/server"
)

var modes = map[string]bool{"write": true, "read": true, "zipf": true, "rmw": true, "range": true}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4100", "ibrd server address")
		conns    = flag.Int("c", 8, "client connections")
		pipeline = flag.Int("p", 4, "concurrent issuers per connection (pipeline depth)")
		seconds  = flag.Float64("i", 2.0, "measured run time in seconds")
		mode     = flag.String("m", "write", "workload mode: write, read, zipf, rmw, range")
		keyRange = flag.Uint64("range", 65536, "key range")
		prefill  = flag.Float64("prefill", 0.5, "fraction of the key range PUT before timing")
		seed     = flag.Int64("seed", 1, "workload RNG seed")

		ttl   = flag.Duration("ttl", 0, "TTL armed on every PUT (0 = no expiry)")
		span  = flag.Uint64("span", 1024, "keys covered by each RANGE scan (range mode)")
		zipfS = flag.Float64("zipf-s", 1.07, "Zipf skew parameter s > 1 (zipf mode)")

		timeout   = flag.Duration("timeout", 2*time.Second, "per-operation deadline (0 disables)")
		retries   = flag.Int("retries", 4, "attempts per operation against BUSY responses")
		retryBase = flag.Duration("retry-base", time.Millisecond, "initial retry backoff (pre-jitter)")
		retryMax  = flag.Duration("retry-max", 50*time.Millisecond, "retry backoff cap (pre-jitter)")
	)
	flag.Parse()
	if !modes[*mode] {
		fmt.Fprintf(os.Stderr, "ibrload: unknown mode %q; valid: write, read, zipf, rmw, range\n", *mode)
		os.Exit(2)
	}
	if *mode == "zipf" && *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "ibrload: -zipf-s must be > 1")
		os.Exit(2)
	}
	if *mode == "range" && *span == 0 {
		fmt.Fprintln(os.Stderr, "ibrload: -span must be positive in range mode")
		os.Exit(2)
	}
	policy := server.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax}

	// WithRetry folds the busy-retry loop into the client itself: every
	// DoContext below retries BUSY under the policy with no per-call
	// ceremony, and exhaustion surfaces as an ErrBusy-wrapping error.
	clients := make([]*server.Client, *conns)
	for i := range clients {
		cl, err := server.Dial(*addr, server.WithRetry(policy))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibrload: dial %s: %v\n", *addr, err)
			os.Exit(1)
		}
		defer cl.Close()
		if err := cl.PingContext(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "ibrload:", err)
			os.Exit(1)
		}
		clients[i] = cl
	}

	if *prefill > 0 {
		if err := doPrefill(clients[0], *keyRange, *prefill, *seed, *ttl); err != nil {
			fmt.Fprintln(os.Stderr, "ibrload: prefill:", err)
			os.Exit(1)
		}
	}

	// One issuer = one closed loop; pipelining comes from running p of
	// them per connection, so every connection keeps p requests in flight.
	// Reads (GET), writes (PUT/DEL), ranges (RANGE) and composite rmw go to
	// separate histograms: a write's retire/scan work and a range's
	// interval-length reservation ride their latency tails, so mixing the
	// classes hides exactly the effects the reclamation schemes differ in.
	// slowOp remembers the worst request of a one-second window and the
	// wire trace ID it carried.
	type slowOp struct {
		lat   time.Duration
		trace uint64
	}
	type issuerOut struct {
		readHist, writeHist  harness.LatencyHist
		rangeHist, rmwHist   harness.LatencyHist
		ok, notFound, exists uint64
		busy, protoErr       uint64
		shed, timeouts       uint64 // non-fatal: retries exhausted / deadline hit
		rangePairs, rangeOps uint64
		slow                 []slowOp
		err                  error
	}
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		outs = make([]issuerOut, *conns**pipeline)
	)
	start := time.Now()
	for ci, cl := range clients {
		for p := 0; p < *pipeline; p++ {
			wg.Add(1)
			go func(cl *server.Client, slot int) {
				defer wg.Done()
				out := &outs[slot]
				rng := rand.New(rand.NewSource(*seed + int64(slot)*7919 + 1))
				var zipf *rand.Zipf
				if *mode == "zipf" {
					zipf = rand.NewZipf(rng, *zipfS, 1, *keyRange-1)
				}
				count := func(st server.Status) {
					switch st {
					case server.StatusOK:
						out.ok++
					case server.StatusNotFound:
						out.notFound++
					case server.StatusExists:
						out.exists++
					case server.StatusBusy:
						out.busy++
					default:
						out.protoErr++
					}
				}
				// fatal classifies one call's error: overload outcomes are
				// part of the measurement (a server shedding load answers
				// BUSY past the retry budget, and a deadline can expire
				// while backing off); only transport errors abort.
				fatal := func(err error) bool {
					switch {
					case errors.Is(err, server.ErrBusy):
						out.shed++
						return false
					case errors.Is(err, context.DeadlineExceeded):
						out.timeouts++
						return false
					default:
						out.err = err
						return true
					}
				}
				var seq uint64
				for !stop.Load() {
					key := rng.Uint64() % *keyRange
					// Trace IDs are slot<<32|seq: unique across the run,
					// and a hex ID read off the exit summary decodes by
					// eye back to which issuer sent it.
					seq++
					trace := uint64(slot+1)<<32 | seq
					ctx := server.WithTraceID(context.Background(), trace)
					var cancel context.CancelFunc
					if *timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, *timeout)
					}

					var (
						req  server.Request
						hist *harness.LatencyHist
					)
					switch *mode {
					case "write":
						req, hist = writeOp(rng, key, *ttl), &out.writeHist
					case "read", "zipf":
						if zipf != nil {
							key = zipf.Uint64()
						}
						switch r := rng.Intn(100); {
						case r < 90:
							req, hist = server.Request{Op: server.OpGet, Key: key}, &out.readHist
						case r < 95:
							req, hist = server.Request{Op: server.OpPut, Key: key, Val: key*2 + 1, TTL: *ttl}, &out.writeHist
						default:
							req, hist = server.Request{Op: server.OpDel, Key: key}, &out.writeHist
						}
					case "range":
						if rng.Intn(8) == 0 {
							hi := key + *span - 1
							if hi < key { // wrapped
								hi = ^uint64(0)
							}
							req = server.Request{Op: server.OpRange, Key: key, KeyHi: hi, TraceID: trace}
							hist = &out.rangeHist
						} else {
							req, hist = writeOp(rng, key, *ttl), &out.writeHist
						}
					case "rmw":
						// Composite: GET, then DEL+PUT of value+1, timed as
						// one operation. Put is insert-if-absent, so the
						// modify step is a delete-then-insert pair.
						t0 := time.Now()
						ok := func() bool {
							g, err := cl.DoContext(ctx, server.Request{Op: server.OpGet, Key: key, TraceID: trace})
							if err != nil {
								return !fatal(err)
							}
							newVal := uint64(1)
							if g.Status == server.StatusOK {
								newVal = g.Val + 1
								if _, err := cl.DoContext(ctx, server.Request{Op: server.OpDel, Key: key, TraceID: trace}); err != nil {
									return !fatal(err)
								}
							}
							p, err := cl.DoContext(ctx, server.Request{Op: server.OpPut, Key: key, Val: newVal, TTL: *ttl, TraceID: trace})
							if err != nil {
								return !fatal(err)
							}
							count(p.Status)
							out.rmwHist.Record(time.Since(t0))
							return true
						}()
						if cancel != nil {
							cancel()
						}
						if !ok && out.err != nil {
							return
						}
						continue
					}

					t0 := time.Now()
					resp, err := cl.DoContext(ctx, req)
					if cancel != nil {
						cancel()
					}
					if err != nil {
						if fatal(err) {
							return
						}
						continue
					}
					lat := time.Since(t0)
					hist.Record(lat)
					if req.Op == server.OpRange {
						if resp.Status == server.StatusUnsupported {
							out.err = fmt.Errorf("server structure does not support RANGE (run ibrd with -structure skiplist)")
							return
						}
						// Validate the scan: strictly ascending (sorted, no
						// duplicates) and inside the requested interval. A
						// violation means the fan-out merge or a shard leg is
						// broken — fail the whole run, loudly.
						for i, p := range resp.Pairs {
							if p.Key < req.Key || p.Key > req.KeyHi {
								out.err = fmt.Errorf("RANGE [%d,%d] returned out-of-bounds key %d", req.Key, req.KeyHi, p.Key)
								return
							}
							if i > 0 && p.Key <= resp.Pairs[i-1].Key {
								out.err = fmt.Errorf("RANGE [%d,%d] not strictly ascending at pair %d (%d after %d)", req.Key, req.KeyHi, i, p.Key, resp.Pairs[i-1].Key)
								return
							}
						}
						out.rangeOps++
						out.rangePairs += uint64(len(resp.Pairs))
					}
					if w := int(t0.Sub(start) / time.Second); w >= 0 {
						for len(out.slow) <= w {
							out.slow = append(out.slow, slowOp{})
						}
						if lat > out.slow[w].lat {
							out.slow[w] = slowOp{lat: lat, trace: trace}
						}
					}
					count(resp.Status)
				}
			}(cl, ci**pipeline+p)
		}
	}
	time.Sleep(time.Duration(*seconds * float64(time.Second)))
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total issuerOut
	for i := range outs {
		o := &outs[i]
		total.readHist.Merge(&o.readHist)
		total.writeHist.Merge(&o.writeHist)
		total.rangeHist.Merge(&o.rangeHist)
		total.rmwHist.Merge(&o.rmwHist)
		total.ok += o.ok
		total.notFound += o.notFound
		total.exists += o.exists
		total.busy += o.busy
		total.protoErr += o.protoErr
		total.shed += o.shed
		total.timeouts += o.timeouts
		total.rangeOps += o.rangeOps
		total.rangePairs += o.rangePairs
		for w, s := range o.slow {
			for len(total.slow) <= w {
				total.slow = append(total.slow, slowOp{})
			}
			if s.lat > total.slow[w].lat {
				total.slow[w] = s
			}
		}
		if o.err != nil && total.err == nil {
			total.err = o.err
		}
	}
	var retried uint64
	for _, cl := range clients {
		retried += cl.Retries()
	}
	ops := total.readHist.Count() + total.writeHist.Count() + total.rangeHist.Count() + total.rmwHist.Count()
	attempts := ops + total.shed + total.timeouts
	fmt.Printf("ibrload: %d conns × %d pipeline, %s mode, %v\n", *conns, *pipeline, *mode, elapsed.Round(time.Millisecond))
	fmt.Printf("  %d ops, %.4f Mops/s (ok %d, not-found %d, exists %d, busy %d)\n",
		ops, float64(ops)/elapsed.Seconds()/1e6, total.ok, total.notFound, total.exists, total.busy)
	if attempts > 0 {
		fmt.Printf("  overload: shed %d (%.2f%%), timeouts %d (%.2f%%), busy retries %d (%.4f/op)\n",
			total.shed, 100*float64(total.shed)/float64(attempts),
			total.timeouts, 100*float64(total.timeouts)/float64(attempts),
			retried, float64(retried)/float64(attempts))
	}
	if total.rangeOps > 0 {
		fmt.Printf("  ranges: %d scans validated, %.1f pairs/scan mean (span %d)\n",
			total.rangeOps, float64(total.rangePairs)/float64(total.rangeOps), *span)
	}
	for _, c := range []struct {
		name string
		h    *harness.LatencyHist
	}{
		{"read  (get)", &total.readHist},
		{"write (put/del)", &total.writeHist},
		{"range (scan)", &total.rangeHist},
		{"rmw (composite)", &total.rmwHist},
	} {
		if c.h.Count() == 0 {
			continue
		}
		fmt.Printf("  latency %-15s: n=%d p50~%v p95~%v p99~%v\n",
			c.name, c.h.Count(), c.h.Quantile(0.50), c.h.Quantile(0.95), c.h.Quantile(0.99))
	}
	if len(total.slow) > 0 {
		fmt.Println("  slowest op per second (look the trace ID up on /debug/trace):")
		for w, s := range total.slow {
			if s.lat == 0 {
				continue
			}
			fmt.Printf("    [%2ds] %-12v trace=0x%016x\n", w, s.lat.Round(time.Microsecond), s.trace)
		}
	}
	if total.err != nil || total.protoErr > 0 {
		fmt.Fprintf(os.Stderr, "ibrload: %d protocol errors, first transport error: %v\n", total.protoErr, total.err)
		os.Exit(1)
	}
}

// writeOp picks one 50/50 PUT/DEL request.
func writeOp(rng *rand.Rand, key uint64, ttl time.Duration) server.Request {
	if rng.Intn(2) == 0 {
		return server.Request{Op: server.OpDel, Key: key}
	}
	return server.Request{Op: server.OpPut, Key: key, Val: key*2 + 1, TTL: ttl}
}

// doPrefill PUTs ~frac of the key range through one client, fanning the
// round trips out over a small issuer pool so a large range loads quickly.
// On failure the issuers keep draining the feed (without issuing) so the
// feeder can never block on a dead pool.
func doPrefill(cl *server.Client, keyRange uint64, frac float64, seed int64, ttl time.Duration) error {
	const issuers = 32
	var (
		keys   = make(chan uint64, issuers)
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		failed atomic.Bool
	)
	report := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for i := 0; i < issuers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range keys {
				if failed.Load() {
					continue
				}
				r, err := cl.Put(context.Background(), k, k*2+1, ttl)
				if err != nil {
					report(err)
				} else if r.Status != server.StatusOK && r.Status != server.StatusExists {
					report(fmt.Errorf("prefill PUT %d: %v", k, r.Status))
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(seed))
	for k := uint64(0); k < keyRange; k++ {
		if rng.Float64() < frac {
			keys <- k
		}
	}
	close(keys)
	wg.Wait()
	return first
}
