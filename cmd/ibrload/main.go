// Command ibrload drives an ibrd server from many pipelined connections
// and reports throughput and latency quantiles; it doubles as the serving
// layer's end-to-end smoke test (any protocol error exits non-zero).
//
//	ibrload -addr 127.0.0.1:4100 -c 8 -p 4 -i 2
//
// opens 8 connections with 4 closed-loop issuers each (pipeline depth 4
// per connection, 32 outstanding requests overall) for 2 seconds and
// prints Mops/s plus separate read (GET) and write (PUT/DEL) p50/p95/p99
// lines from the merged per-issuer histograms.
//
// Every measured request carries a unique causal trace ID on the wire
// (issuer slot in the high half, per-issuer sequence in the low), and the
// exit summary names the slowest request of each one-second window by its
// trace ID — paste it into the /debug/trace timeline (or an ibrtrace
// capture) to see what the server's reclamation machinery was doing while
// that request executed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ibr/internal/harness"
	"ibr/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4100", "ibrd server address")
		conns    = flag.Int("c", 8, "client connections")
		pipeline = flag.Int("p", 4, "concurrent issuers per connection (pipeline depth)")
		seconds  = flag.Float64("i", 2.0, "measured run time in seconds")
		mode     = flag.String("m", "write", "workload mode: write (50/50 put/del) or read (90% gets)")
		keyRange = flag.Uint64("range", 65536, "key range")
		prefill  = flag.Float64("prefill", 0.5, "fraction of the key range PUT before timing")
		seed     = flag.Int64("seed", 1, "workload RNG seed")

		timeout   = flag.Duration("timeout", 2*time.Second, "per-operation deadline (0 disables)")
		retries   = flag.Int("retries", 4, "attempts per operation against BUSY responses")
		retryBase = flag.Duration("retry-base", time.Millisecond, "initial retry backoff (pre-jitter)")
		retryMax  = flag.Duration("retry-max", 50*time.Millisecond, "retry backoff cap (pre-jitter)")
	)
	flag.Parse()
	if *mode != "write" && *mode != "read" {
		fmt.Fprintf(os.Stderr, "ibrload: unknown mode %q; valid: write, read\n", *mode)
		os.Exit(2)
	}
	policy := server.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax}

	clients := make([]*server.Client, *conns)
	for i := range clients {
		cl, err := server.Dial(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibrload: dial %s: %v\n", *addr, err)
			os.Exit(1)
		}
		defer cl.Close()
		if err := cl.Ping(); err != nil {
			fmt.Fprintln(os.Stderr, "ibrload:", err)
			os.Exit(1)
		}
		clients[i] = cl
	}

	if *prefill > 0 {
		if err := doPrefill(clients[0], *keyRange, *prefill, *seed, policy); err != nil {
			fmt.Fprintln(os.Stderr, "ibrload: prefill:", err)
			os.Exit(1)
		}
	}

	// One issuer = one closed loop; pipelining comes from running p of
	// them per connection, so every connection keeps p requests in flight.
	// Reads (GET) and writes (PUT/DEL) go to separate histograms: a write's
	// retire/scan work rides its latency tail, so mixing the classes hides
	// exactly the effect the reclamation schemes differ in.
	// slowOp remembers the worst request of a one-second window and the
	// wire trace ID it carried.
	type slowOp struct {
		lat   time.Duration
		trace uint64
	}
	type issuerOut struct {
		readHist, writeHist  harness.LatencyHist
		ok, notFound, exists uint64
		busy, protoErr       uint64
		shed, timeouts       uint64 // non-fatal: retries exhausted / deadline hit
		slow                 []slowOp
		err                  error
	}
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		outs = make([]issuerOut, *conns**pipeline)
	)
	start := time.Now()
	for ci, cl := range clients {
		for p := 0; p < *pipeline; p++ {
			wg.Add(1)
			go func(cl *server.Client, slot int) {
				defer wg.Done()
				out := &outs[slot]
				rng := rand.New(rand.NewSource(*seed + int64(slot)*7919 + 1))
				var seq uint64
				for !stop.Load() {
					key := rng.Uint64() % *keyRange
					op := server.OpPut
					if *mode == "read" {
						switch r := rng.Intn(100); {
						case r < 90:
							op = server.OpGet
						case r < 95:
							op = server.OpPut
						default:
							op = server.OpDel
						}
					} else if rng.Intn(2) == 0 {
						op = server.OpDel
					}
					// Trace IDs are slot<<32|seq: unique across the run,
					// and a hex ID read off the exit summary decodes by
					// eye back to which issuer sent it.
					seq++
					trace := uint64(slot+1)<<32 | seq
					ctx := server.WithTraceID(context.Background(), trace)
					var cancel context.CancelFunc
					if *timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, *timeout)
					}
					t0 := time.Now()
					resp, err := cl.DoRetry(ctx, op, key, key*2+1, policy)
					if cancel != nil {
						cancel()
					}
					if err != nil {
						// Overload outcomes are part of the measurement, not
						// failures: a server shedding load answers BUSY past
						// the retry budget, and a deadline can expire while
						// backing off. Only transport errors are fatal.
						switch {
						case errors.Is(err, server.ErrBusy):
							out.shed++
							continue
						case errors.Is(err, context.DeadlineExceeded):
							out.timeouts++
							continue
						default:
							out.err = err
							return
						}
					}
					lat := time.Since(t0)
					if op == server.OpGet {
						out.readHist.Record(lat)
					} else {
						out.writeHist.Record(lat)
					}
					if w := int(t0.Sub(start) / time.Second); w >= 0 {
						for len(out.slow) <= w {
							out.slow = append(out.slow, slowOp{})
						}
						if lat > out.slow[w].lat {
							out.slow[w] = slowOp{lat: lat, trace: trace}
						}
					}
					switch resp.Status {
					case server.StatusOK:
						out.ok++
					case server.StatusNotFound:
						out.notFound++
					case server.StatusExists:
						out.exists++
					case server.StatusBusy:
						out.busy++
					default:
						out.protoErr++
					}
				}
			}(cl, ci**pipeline+p)
		}
	}
	time.Sleep(time.Duration(*seconds * float64(time.Second)))
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total issuerOut
	for i := range outs {
		o := &outs[i]
		total.readHist.Merge(&o.readHist)
		total.writeHist.Merge(&o.writeHist)
		total.ok += o.ok
		total.notFound += o.notFound
		total.exists += o.exists
		total.busy += o.busy
		total.protoErr += o.protoErr
		total.shed += o.shed
		total.timeouts += o.timeouts
		for w, s := range o.slow {
			for len(total.slow) <= w {
				total.slow = append(total.slow, slowOp{})
			}
			if s.lat > total.slow[w].lat {
				total.slow[w] = s
			}
		}
		if o.err != nil && total.err == nil {
			total.err = o.err
		}
	}
	var retried uint64
	for _, cl := range clients {
		retried += cl.Retries()
	}
	ops := total.readHist.Count() + total.writeHist.Count()
	attempts := ops + total.shed + total.timeouts
	fmt.Printf("ibrload: %d conns × %d pipeline, %s mode, %v\n", *conns, *pipeline, *mode, elapsed.Round(time.Millisecond))
	fmt.Printf("  %d ops, %.4f Mops/s (ok %d, not-found %d, exists %d, busy %d)\n",
		ops, float64(ops)/elapsed.Seconds()/1e6, total.ok, total.notFound, total.exists, total.busy)
	if attempts > 0 {
		fmt.Printf("  overload: shed %d (%.2f%%), timeouts %d (%.2f%%), busy retries %d (%.4f/op)\n",
			total.shed, 100*float64(total.shed)/float64(attempts),
			total.timeouts, 100*float64(total.timeouts)/float64(attempts),
			retried, float64(retried)/float64(attempts))
	}
	for _, c := range []struct {
		name string
		h    *harness.LatencyHist
	}{{"read  (get)", &total.readHist}, {"write (put/del)", &total.writeHist}} {
		if c.h.Count() == 0 {
			fmt.Printf("  latency %-15s: no ops\n", c.name)
			continue
		}
		fmt.Printf("  latency %-15s: n=%d p50~%v p95~%v p99~%v\n",
			c.name, c.h.Count(), c.h.Quantile(0.50), c.h.Quantile(0.95), c.h.Quantile(0.99))
	}
	if len(total.slow) > 0 {
		fmt.Println("  slowest op per second (look the trace ID up on /debug/trace):")
		for w, s := range total.slow {
			if s.lat == 0 {
				continue
			}
			fmt.Printf("    [%2ds] %-12v trace=0x%016x\n", w, s.lat.Round(time.Microsecond), s.trace)
		}
	}
	if total.err != nil || total.protoErr > 0 {
		fmt.Fprintf(os.Stderr, "ibrload: %d protocol errors, first transport error: %v\n", total.protoErr, total.err)
		os.Exit(1)
	}
}

// doPrefill PUTs ~frac of the key range through one client, fanning the
// round trips out over a small issuer pool so a large range loads quickly.
// On failure the issuers keep draining the feed (without issuing) so the
// feeder can never block on a dead pool.
func doPrefill(cl *server.Client, keyRange uint64, frac float64, seed int64, policy server.RetryPolicy) error {
	const issuers = 32
	var (
		keys   = make(chan uint64, issuers)
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		failed atomic.Bool
	)
	report := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for i := 0; i < issuers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range keys {
				if failed.Load() {
					continue
				}
				r, err := cl.DoRetry(context.Background(), server.OpPut, k, k*2+1, policy)
				if err != nil {
					report(err)
				} else if r.Status != server.StatusOK && r.Status != server.StatusExists {
					report(fmt.Errorf("prefill PUT %d: %v", k, r.Status))
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(seed))
	for k := uint64(0); k < keyRange; k++ {
		if rng.Float64() < frac {
			keys <- k
		}
	}
	close(keys)
	wg.Wait()
	return first
}
