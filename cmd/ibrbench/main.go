// Command ibrbench runs one cell of the paper's microbenchmark, mirroring
// the artifact's bin/main driver:
//
//	ibrbench -r hashmap -d tracker=tagibr -t 32 -i 10 -o out.csv
//
// runs the hash map under TagIBR with 32 threads for 10 seconds and appends
// a CSV row to out.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/harness"
)

func main() {
	var (
		structure = flag.String("r", "hashmap", "rideable: "+strings.Join(ds.MapStructures(), ", "))
		tracker   = flag.String("d", "tracker=ebr", "memory manager, artifact-style: tracker=<name>; names: "+strings.Join(core.Schemes(), ", "))
		threads   = flag.Int("t", 4, "worker thread count")
		seconds   = flag.Float64("i", 1.0, "interval: run time in seconds")
		mode      = flag.String("m", "write", "workload mode: write (50/50 ins/rem) or read (90% reads)")
		keyRange  = flag.Uint64("range", 65536, "key range")
		prefill   = flag.Float64("prefill", 0.75, "prefilled fraction of the key range")
		epochf    = flag.Int("epochf", 150, "epoch advance frequency (per-thread allocations)")
		emptyf    = flag.Int("emptyf", 30, "retire-list scan frequency (retirements)")
		buckets   = flag.Int("buckets", ds.DefaultBuckets, "hash map buckets")
		stalled   = flag.Int("stalled", 0, "stalled workers holding reservations")
		stallMS   = flag.Int("stallms", 10, "stall duration per park (ms)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		outPath   = flag.String("o", "", "append a CSV row to this file (header added if new)")
		verbose   = flag.Bool("v", false, "print the full result")
		lat       = flag.Bool("lat", false, "measure per-operation latency quantiles")
	)
	flag.Parse()

	scheme := strings.TrimPrefix(*tracker, "tracker=")
	if !ds.IsMapStructure(*structure) {
		fmt.Fprintf(os.Stderr, "ibrbench: unknown structure %q; valid: %s\n",
			*structure, strings.Join(ds.MapStructures(), ", "))
		os.Exit(2)
	}
	if !core.IsScheme(scheme) {
		fmt.Fprintf(os.Stderr, "ibrbench: unknown scheme %q; valid: %s\n",
			scheme, strings.Join(core.Schemes(), ", "))
		os.Exit(2)
	}
	wl := harness.WriteDominated
	if *mode == "read" {
		wl = harness.ReadDominated
	}
	cfg := harness.Config{
		Structure:      *structure,
		Scheme:         scheme,
		Threads:        *threads,
		Duration:       time.Duration(*seconds * float64(time.Second)),
		Workload:       wl,
		KeyRange:       *keyRange,
		Prefill:        *prefill,
		EpochFreq:      *epochf,
		EmptyFreq:      *emptyf,
		Buckets:        *buckets,
		Stalled:        *stalled,
		StallFor:       time.Duration(*stallMS) * time.Millisecond,
		Seed:           *seed,
		MeasureLatency: *lat,
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibrbench:", err)
		os.Exit(1)
	}

	fmt.Printf("%s/%s t=%d %s: %.4f Mops/s, avg retired %.1f blocks\n",
		res.Structure, res.Scheme, res.Threads, res.Workload, res.Mops, res.AvgRetired)
	if res.Latency != nil {
		fmt.Printf("  latency: %s\n", res.Latency)
	}
	if *verbose {
		fmt.Printf("  ops=%d allocs=%d frees=%d live=%d\n", res.Ops, res.Allocs, res.Frees, res.Live)
		fmt.Printf("  ins %d/%d, rem %d/%d, get %d/%d (ok/fail)\n",
			res.InsertOK, res.InsertFail, res.RemoveOK, res.RemoveFail, res.GetHit, res.GetMiss)
		if res.Scans > 0 {
			fmt.Printf("  scans=%d mean-list=%.0f freed=%d\n", res.Scans, res.ScanMeanLen, res.ScanFreed)
		}
		for tid, ops := range res.PerThreadOps {
			fmt.Printf("  thread %2d: %d ops\n", tid, ops)
		}
	}
	if *outPath != "" {
		if err := appendCSV(*outPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "ibrbench:", err)
			os.Exit(1)
		}
	}
}

func appendCSV(path string, res harness.Result) error {
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if os.IsNotExist(statErr) {
		if err := harness.WriteCSVHeader(f); err != nil {
			return err
		}
	}
	return harness.WriteCSVRow(f, "manual", res)
}
