// Command ibrbench runs one cell of the paper's microbenchmark, mirroring
// the artifact's bin/main driver:
//
//	ibrbench -r hashmap -d tracker=tagibr -t 32 -i 10 -o out.csv
//
// runs the hash map under TagIBR with 32 threads for 10 seconds and appends
// a CSV row to out.csv.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ibr/internal/core"
	"ibr/internal/ds"
	"ibr/internal/harness"
	"ibr/internal/obs"
)

func main() {
	var (
		structure = flag.String("r", "hashmap", "rideable: "+strings.Join(ds.MapStructures(), ", "))
		tracker   = flag.String("d", "tracker=ebr", "memory manager, artifact-style: tracker=<name>; names: "+strings.Join(core.Schemes(), ", "))
		threads   = flag.Int("t", 4, "worker thread count")
		seconds   = flag.Float64("i", 1.0, "interval: run time in seconds")
		mode      = flag.String("m", "write", "workload mode: write (50/50 ins/rem) or read (90% reads)")
		keyRange  = flag.Uint64("range", 65536, "key range")
		prefill   = flag.Float64("prefill", 0.75, "prefilled fraction of the key range")
		epochf    = flag.Int("epochf", 150, "epoch advance frequency (per-thread allocations)")
		emptyf    = flag.Int("emptyf", 30, "retire-list scan frequency (retirements)")
		buckets   = flag.Int("buckets", ds.DefaultBuckets, "hash map buckets")
		stalled   = flag.Int("stalled", 0, "stalled workers holding reservations")
		stallMS   = flag.Int("stallms", 10, "stall duration per park (ms)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		outPath   = flag.String("o", "", "append a CSV row to this file (header added if new)")
		jsonPath  = flag.String("json", "", "append a machine-readable JSON line (ops/s + scan stats) to this file")
		verbose   = flag.Bool("v", false, "print the full result")
		lat       = flag.Bool("lat", false, "measure per-operation latency quantiles")
		obsOn     = flag.Bool("obs", false, "run with the observability hooks live (flight recorder + histograms)")
	)
	flag.Parse()

	scheme := strings.TrimPrefix(*tracker, "tracker=")
	if !ds.IsMapStructure(*structure) {
		fmt.Fprintf(os.Stderr, "ibrbench: unknown structure %q; valid: %s\n",
			*structure, strings.Join(ds.MapStructures(), ", "))
		os.Exit(2)
	}
	if !core.IsScheme(scheme) {
		fmt.Fprintf(os.Stderr, "ibrbench: unknown scheme %q; valid: %s\n",
			scheme, strings.Join(core.Schemes(), ", "))
		os.Exit(2)
	}
	wl := harness.WriteDominated
	if *mode == "read" {
		wl = harness.ReadDominated
	}
	cfg := harness.Config{
		Structure:      *structure,
		Scheme:         scheme,
		Threads:        *threads,
		Duration:       time.Duration(*seconds * float64(time.Second)),
		Workload:       wl,
		KeyRange:       *keyRange,
		Prefill:        *prefill,
		EpochFreq:      *epochf,
		EmptyFreq:      *emptyf,
		Buckets:        *buckets,
		Stalled:        *stalled,
		StallFor:       time.Duration(*stallMS) * time.Millisecond,
		Seed:           *seed,
		MeasureLatency: *lat,
	}
	if *obsOn {
		cfg.Obs = &obs.Options{}
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibrbench:", err)
		os.Exit(1)
	}

	fmt.Printf("%s/%s t=%d %s: %.4f Mops/s, avg retired %.1f blocks\n",
		res.Structure, res.Scheme, res.Threads, res.Workload, res.Mops, res.AvgRetired)
	if res.Latency != nil {
		fmt.Printf("  latency: %s\n", res.Latency)
	}
	if *verbose {
		fmt.Printf("  ops=%d allocs=%d frees=%d live=%d\n", res.Ops, res.Allocs, res.Frees, res.Live)
		fmt.Printf("  ins %d/%d, rem %d/%d, get %d/%d (ok/fail)\n",
			res.InsertOK, res.InsertFail, res.RemoveOK, res.RemoveFail, res.GetHit, res.GetMiss)
		if res.Scans > 0 {
			fmt.Printf("  scans=%d mean-list=%.0f freed=%d\n", res.Scans, res.ScanMeanLen, res.ScanFreed)
		}
		for tid, ops := range res.PerThreadOps {
			fmt.Printf("  thread %2d: %d ops\n", tid, ops)
		}
	}
	if *outPath != "" {
		if err := appendCSV(*outPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "ibrbench:", err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		if err := appendJSON(*jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "ibrbench:", err)
			os.Exit(1)
		}
	}
}

// benchRecord is the BENCH_scan.json line format: one self-contained JSON
// object per run, so CI and scripts can diff scan efficiency across commits
// without parsing the human-oriented CSV.
type benchRecord struct {
	Structure        string  `json:"structure"`
	Scheme           string  `json:"scheme"`
	Threads          int     `json:"threads"`
	Mode             string  `json:"mode"`
	Seconds          float64 `json:"seconds"`
	Ops              uint64  `json:"ops"`
	Mops             float64 `json:"mops"`
	AvgRetired       float64 `json:"avg_retired"`
	Scans            uint64  `json:"scans"`
	ScanExaminedMean float64 `json:"scan_examined_mean"`
	ScanFreed        uint64  `json:"scan_freed"`
	ExaminedPerFreed float64 `json:"examined_per_freed"`
	BucketSkips      uint64  `json:"bucket_skips"`
	BucketFrees      uint64  `json:"bucket_frees"`
	Obs              bool    `json:"obs"`
}

func appendJSON(path string, res harness.Result) error {
	rec := benchRecord{
		Structure: res.Structure,
		Scheme:    res.Scheme,
		Threads:   res.Threads,
		Mode:      res.Workload.String(),
		// Measured wall time, NOT the requested -i interval: wg.Wait() lets
		// in-flight ops finish after the stop flag, so ops/seconds must use
		// the same clock Mops was computed with or the two silently disagree.
		Seconds:          res.Elapsed.Seconds(),
		Ops:              res.Ops,
		Mops:             res.Mops,
		AvgRetired:       res.AvgRetired,
		Scans:            res.Scans,
		ScanExaminedMean: res.ScanMeanLen,
		ScanFreed:        res.ScanFreed,
		BucketSkips:      res.ScanBucketSkips,
		BucketFrees:      res.ScanBucketFrees,
		Obs:              res.Obs != nil,
	}
	if res.ScanFreed > 0 {
		rec.ExaminedPerFreed = float64(res.ScanExamined) / float64(res.ScanFreed)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}

func appendCSV(path string, res harness.Result) error {
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if os.IsNotExist(statErr) {
		if err := harness.WriteCSVHeader(f); err != nil {
			return err
		}
	}
	return harness.WriteCSVRow(f, "manual", res)
}
