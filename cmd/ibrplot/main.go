// Command ibrplot turns the CSV written by ibrfigs into SVG line charts —
// the stdlib stand-in for the artifact's "Rscript genfigs.R":
//
//	ibrplot -i data -o data          # every *.csv with harness columns → two SVGs each
//	ibrplot -i data/fig8b.csv -o data
//
// Each figure yields <name>-mops.svg (throughput, Fig. 8 style) and
// <name>-space.svg (avg retired blocks, Fig. 9/10 style, log y).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ibr/internal/plot"
)

func main() {
	in := flag.String("i", "data", "CSV file or directory of fig*.csv")
	out := flag.String("o", "data", "output directory for SVGs")
	flag.Parse()

	var files []string
	if st, err := os.Stat(*in); err == nil && st.IsDir() {
		matches, _ := filepath.Glob(filepath.Join(*in, "*.csv"))
		files = matches
	} else {
		files = []string{*in}
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "ibrplot: no CSV files found")
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ibrplot:", err)
		os.Exit(1)
	}
	for _, f := range files {
		if err := plotFile(f, *out); err != nil {
			if strings.Contains(err.Error(), "missing column") {
				continue // not a harness CSV (e.g. a stallcurve series)
			}
			fmt.Fprintf(os.Stderr, "ibrplot: %s: %v\n", f, err)
			os.Exit(1)
		}
	}
}

func plotFile(path, outDir string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := plot.ReadHarnessCSV(f)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(path), ".csv")
	for _, metric := range []string{"mops", "space"} {
		c := plot.BuildFigure(name, metric, rows)
		outPath := filepath.Join(outDir, fmt.Sprintf("%s-%s.svg", name, metric))
		if err := os.WriteFile(outPath, []byte(c.SVG()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
