// Command ibrlint statically enforces the IBR reservation protocol over
// this repository. It is a go/analysis unitchecker driver, meant to be run
// through the go command, which supplies package loading, export data, and
// caching:
//
//	go build -o bin/ibrlint ./cmd/ibrlint
//	go vet -vettool=bin/ibrlint ./...
//
// (That is exactly what `make lint` does.) The suite:
//
//	derefguard   shared-memory accesses in internal/ds stay inside the
//	             StartOp/EndOp reservation bracket
//	endop        every StartOp is matched by EndOp on all return paths
//	retirefree   only internal/core and internal/mem may Free directly;
//	             data structures must Scheme.Retire
//	epochstamp   allocator handles are birth-stamped (SetBirth) before
//	             they escape; structures allocate via Scheme.Alloc
//	atomicmix    a word accessed through sync/atomic is never accessed
//	             plainly elsewhere
//	ibrdirective //ibrlint:ignore directives carry a reason
//
// False positives are suppressed with `//ibrlint:ignore <reason>` on the
// flagged line, the line above it, or the doc comment of the enclosing
// function. The reason string is mandatory.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"ibr/internal/analysis/atomicmix"
	"ibr/internal/analysis/derefguard"
	"ibr/internal/analysis/endop"
	"ibr/internal/analysis/epochstamp"
	"ibr/internal/analysis/ibrdirective"
	"ibr/internal/analysis/retirefree"
)

func main() {
	unitchecker.Main(
		derefguard.Analyzer,
		endop.Analyzer,
		retirefree.Analyzer,
		epochstamp.Analyzer,
		atomicmix.Analyzer,
		ibrdirective.Analyzer,
	)
}
