// Command ibrlint statically enforces the IBR reservation protocol over
// this repository. It is a go/analysis unitchecker driver, meant to be run
// through the go command, which supplies package loading, export data, and
// caching:
//
//	go build -o bin/ibrlint ./cmd/ibrlint
//	go vet -vettool=bin/ibrlint ./...
//
// (That is exactly what `make lint` does.) The suite:
//
//	derefguard   shared-memory accesses in internal/ds stay inside the
//	             StartOp/EndOp reservation bracket; handing a handle to an
//	             opaque visitor callback (the ds.Ranger idiom) counts as
//	             such an access
//	endop        every StartOp is matched by EndOp on all return paths
//	retirefree   only internal/core and internal/mem may Free directly;
//	             data structures must Scheme.Retire
//	epochstamp   allocator handles are birth-stamped (SetBirth) before
//	             they escape; structures allocate via Scheme.Alloc
//	atomicmix    a word accessed through sync/atomic is never accessed
//	             plainly elsewhere
//	lifecycle    handle typestate: no use, retire, free, or publish of a
//	             handle after it was retired on some path; no read handle
//	             outliving its op's EndOp unpublished; no protected-read
//	             handle exposed to a visitor callback from an exported scan
//	             (range visitors receive values, not handles). Flows through
//	             struct fields and across function boundaries (facts)
//	ibrdirective //ibrlint:ignore directives carry a reason and actually
//	             suppress something (stale ignores are flagged)
//
// False positives are suppressed with `//ibrlint:ignore <reason>` on the
// flagged line, the line above it, or the doc comment of the enclosing
// function. The reason string is mandatory, and a directive that stops
// suppressing anything is itself reported.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"ibr/internal/analysis/atomicmix"
	"ibr/internal/analysis/derefguard"
	"ibr/internal/analysis/endop"
	"ibr/internal/analysis/epochstamp"
	"ibr/internal/analysis/ibrdirective"
	"ibr/internal/analysis/lifecycle"
	"ibr/internal/analysis/retirefree"
)

func main() {
	unitchecker.Main(
		derefguard.Analyzer,
		endop.Analyzer,
		retirefree.Analyzer,
		epochstamp.Analyzer,
		atomicmix.Analyzer,
		lifecycle.Analyzer,
		ibrdirective.Analyzer,
	)
}
