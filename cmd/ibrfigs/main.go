// Command ibrfigs regenerates the paper's evaluation figures (see DESIGN.md
// §4 for the experiment index): it sweeps every (scheme × thread-count)
// cell of one or all experiments, writes the raw measurements as CSV, and
// prints ASCII series tables for both metrics (throughput for Fig. 8, the
// average retired-but-unreclaimed block count for Figs. 9/10).
//
//	ibrfigs -fig all -i 0.25 -o data
//	ibrfigs -fig 8c -threads 1,4,16,64
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ibr/internal/harness"
	"ibr/internal/plot"
)

func main() {
	var (
		fig      = flag.String("fig", "all", `experiment id ("8a".."8d", "10", "k", "stall", "stallcurve") or "all"`)
		interval = flag.Float64("i", 0.25, "seconds per benchmark cell")
		threads  = flag.String("threads", "", "comma-separated thread counts overriding the default sweep")
		outDir   = flag.String("o", "data", "directory for CSV output")
		quiet    = flag.Bool("q", false, "suppress the ASCII tables")
	)
	flag.Parse()

	var override []int
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "ibrfigs: bad thread count %q\n", part)
				os.Exit(1)
			}
			override = append(override, n)
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ibrfigs:", err)
		os.Exit(1)
	}

	if *fig == "stallcurve" || *fig == "all" {
		if err := runStallCurve(time.Duration(*interval*float64(time.Second)), *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "ibrfigs:", err)
			os.Exit(1)
		}
		if *fig == "stallcurve" {
			return
		}
	}

	var exps []harness.Experiment
	if *fig == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.ExperimentByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibrfigs:", err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}

	for _, e := range exps {
		if err := runExperiment(e, time.Duration(*interval*float64(time.Second)), override, *outDir, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "ibrfigs:", err)
			os.Exit(1)
		}
	}
}

func runExperiment(e harness.Experiment, d time.Duration, override []int, outDir string, quiet bool) error {
	cells := e.Cells(d, override)
	fmt.Fprintf(os.Stderr, "== %s: %s (%d cells, %.2gs each)\n", e.ID, e.Title, len(cells), d.Seconds())

	path := filepath.Join(outDir, e.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := harness.WriteCSVHeader(f); err != nil {
		return err
	}

	var results []harness.Result
	for i, cfg := range cells {
		res, err := harness.Run(cfg)
		if err != nil {
			return fmt.Errorf("cell %d (%s/%s t=%d): %w", i, cfg.Structure, cfg.Scheme, cfg.Threads, err)
		}
		results = append(results, res)
		if err := harness.WriteCSVRow(f, e.ID, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-12s t=%-3d k=%-3d %10.4f Mops  %10.1f retired\n",
			i+1, len(cells), cfg.Scheme, cfg.Threads, cfg.EmptyFreq, res.Mops, res.AvgRetired)
	}

	if !quiet {
		if e.ID == "ksweep" {
			printKSweep(results)
		} else {
			harness.Series(os.Stdout, e.Title, "mops", results)
			fmt.Println()
			harness.Series(os.Stdout, e.Title, "space", results)
			fmt.Println()
		}
	}
	fmt.Fprintf(os.Stderr, "   wrote %s\n", path)
	return nil
}

// printKSweep renders the empty-frequency ablation: rows are k values,
// column pairs are (Mops, retired) per scheme.
func printKSweep(results []harness.Result) {
	fmt.Println("# §5 tuning sweep: retire-scan frequency k (expect flat Mops, ~linear space)")
	schemes := []string{}
	seen := map[string]bool{}
	ks := []int{}
	seenK := map[int]bool{}
	for _, r := range results {
		if !seen[r.Scheme] {
			seen[r.Scheme] = true
			schemes = append(schemes, r.Scheme)
		}
		if !seenK[r.EmptyFreq] {
			seenK[r.EmptyFreq] = true
			ks = append(ks, r.EmptyFreq)
		}
	}
	fmt.Printf("%-6s", "k")
	for _, s := range schemes {
		fmt.Printf("%14s", s+" Mops")
		fmt.Printf("%14s", s+" space")
	}
	fmt.Println()
	for _, k := range ks {
		fmt.Printf("%-6d", k)
		for _, s := range schemes {
			for _, r := range results {
				if r.EmptyFreq == k && r.Scheme == s {
					fmt.Printf("%14.4f%14.1f", r.Mops, r.AvgRetired)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

// runStallCurve records the space-vs-time series for each scheme with one
// mid-run staller and renders them as a single SVG — the paper's
// robustness claim as a picture: EBR's curve tracks the stall duration,
// the robust schemes plateau.
func runStallCurve(d time.Duration, outDir string) error {
	if d < 400*time.Millisecond {
		d = 400 * time.Millisecond
	}
	fmt.Fprintf(os.Stderr, "== stallcurve: retired blocks vs time, 1 staller (%.2gs per scheme)\n", d.Seconds())
	chart := &plot.Chart{
		Title:  "retired blocks over time with one stalled thread (stall = half the run)",
		XLabel: "ms",
		YLabel: "retired-but-unreclaimed blocks",
	}
	for _, scheme := range []string{"ebr", "hp", "he", "tagibr", "2geibr"} {
		series, err := harness.RunSpaceSeries(harness.Config{
			Structure: "hashmap", Scheme: scheme, Threads: 2,
			Stalled: 1, StallFor: d / 2,
			Duration: d, KeyRange: 4096,
		}, d/100)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, "stallcurve-"+scheme+".csv"))
		if err != nil {
			return err
		}
		if err := harness.WriteSpaceSeriesCSV(f, series); err != nil {
			f.Close()
			return err
		}
		f.Close()
		s := plot.Series{Name: scheme}
		for _, p := range series.Points {
			s.X = append(s.X, float64(p.T.Microseconds())/1000)
			s.Y = append(s.Y, float64(p.Retired))
		}
		chart.Series = append(chart.Series, s)
		fmt.Fprintf(os.Stderr, "   %-8s %d samples\n", scheme, len(series.Points))
	}
	path := filepath.Join(outDir, "stallcurve.svg")
	if err := os.WriteFile(path, []byte(chart.SVG()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "   wrote %s\n", path)
	return nil
}
