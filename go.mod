module ibr

go 1.24
